// Package streaming computes the paper's analyses online, over a live
// record stream, instead of in batch over a finished trace. It is the
// analytics half of the live ingest subsystem (internal/ingest is the
// transport half): a sliding ring of hourly buckets carries the Figure-2
// flow/byte series, a per-prefix counter tracks the most active client
// networks, district rollups reproduce the Figure-3 geography, and a
// trailing-baseline detector flags launch/attention spikes like the
// June-16 release jump.
//
// An Analytics value is one single-goroutine shard. The ingest pipeline
// runs one shard per worker and merges them at snapshot time; every
// aggregate is a commutative sum (flow counts and byte totals are
// integer-valued, so float64 accumulation is exact and order-free), which
// makes the merged snapshot byte-identical at any worker count — the
// property the end-to-end loopback test pins against the batch
// internal/core results.
package streaming

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"cwatrace/internal/adoption"
	"cwatrace/internal/core"
	"cwatrace/internal/entime"
	"cwatrace/internal/geo"
	"cwatrace/internal/geodb"
	"cwatrace/internal/netflow"
	"cwatrace/internal/stats"
)

// nReasons sizes the per-shard drop census array.
const nReasons = int(core.DropUpstream) + 1

// Config parameterizes one analytics shard. The zero value is usable:
// defaults reproduce the paper's study window and filters.
type Config struct {
	// Origin anchors hour bucket 0 (default entime.StudyStart). Records
	// before Origin, or more than WindowHours behind the newest record,
	// count as Late and are otherwise ignored.
	Origin time.Time
	// WindowHours is the sliding window length in hourly buckets
	// (default entime.StudyHours(), i.e. the whole study window).
	WindowHours int
	// TopK bounds the active-prefix leaderboard in snapshots (default 10).
	TopK int
	// PrefixBits is the client aggregation prefix length (default 24).
	PrefixBits int
	// SpikeFactor is the flows-over-baseline ratio that flags an hour as
	// a spike (default 3). SpikeHistory is the trailing-mean length in
	// hours (default 24); SpikeMinFlows suppresses noise spikes on tiny
	// absolute volume (default 10).
	SpikeFactor   float64
	SpikeHistory  int
	SpikeMinFlows float64
	// Archive disables sliding-window eviction: instead of sliding past
	// (and silently dropping) the oldest hourly bins, the ring grows to
	// cover every hour the shard has binned, and WindowHours becomes the
	// current ring size. The durable store's tail shards run this way —
	// a checkpoint frame must hold *every* hour of the WAL interval it
	// lets the store delete, no matter how many data-hours a burst
	// ingested between checkpoints. Records before Origin still count as
	// Late; memory is bounded by the shard's lifetime (one checkpoint
	// interval for the store's tail), not by WindowHours.
	Archive bool
	// Filter is the paper's data-set restriction (nil = core.DefaultFilter()).
	Filter *core.Filter
	// DB and Model enable per-district rollups; both nil disables them.
	DB    *geodb.DB
	Model *geo.Model
}

// WithDefaults returns the configuration with every zero field filled in,
// exactly as New would resolve it. The durable store uses it to persist
// and validate the resolved analytics parameters across restarts.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Origin.IsZero() {
		c.Origin = entime.StudyStart
	}
	if c.WindowHours <= 0 {
		c.WindowHours = entime.StudyHours()
	}
	if c.TopK <= 0 {
		c.TopK = 10
	}
	if c.PrefixBits <= 0 || c.PrefixBits > 32 {
		c.PrefixBits = 24
	}
	if c.SpikeFactor <= 0 {
		c.SpikeFactor = 3
	}
	if c.SpikeHistory <= 0 {
		c.SpikeHistory = 24
	}
	if c.SpikeMinFlows <= 0 {
		c.SpikeMinFlows = 10
	}
	if c.Filter == nil {
		f := core.DefaultFilter()
		c.Filter = &f
	}
	return c
}

// hourBin is one populated hourly bucket in canonical (row) form. The live
// ring stores bins column-wise (see Analytics); hourBin remains the unit
// sortedBins, Merge and the state codec exchange.
type hourBin struct {
	hour  int
	flows float64
	bytes float64
}

// Analytics is one online-analytics shard. It is not safe for concurrent
// use; the ingest pipeline drives each shard from a single worker and
// guards snapshots with the pipeline's own locking.
//
// The hot-path state is laid out columnar (struct-of-arrays): the hourly
// ring is three parallel slices instead of a []hourBin, and the prefix and
// district counters are flat count arrays keyed by interned indexes, with
// the maps reduced to string/prefix → index lookups. A per-record update
// is then a handful of array writes; the only map the steady state touches
// is the int-keyed prefix fast index, whose lookups need no hashing of
// 40-byte netip.Prefix values and whose hits never call mapassign.
type Analytics struct {
	cfg     Config
	filter  core.Filter
	cfilter core.CompiledFilter

	// originSec enables the integer-seconds hour binning fast path; it is
	// only valid when originWhole is set (Origin has no sub-second part —
	// otherwise second-truncated math would disagree with Sub/time.Hour
	// and the slow path runs).
	originSec   int64
	originWhole bool

	// The hourly ring, column-wise. binHour[s] is the hour index occupying
	// slot s (-1 empty); binFlows/binBytes are only meaningful where
	// binHour agrees with the probed hour, exactly like hourBin.hour did.
	binHour  []int32
	binFlows []float64
	binBytes []float64

	maxHour int // highest hour index seen; -1 before any record
	// archiveMin is the lowest binned hour of an Archive shard (-1 before
	// any). Archive shards never evict, so it only ever decreases; the
	// O(1) grow check in ensureArchiveWindow depends on it.
	archiveMin int

	// curHour/curSlot memoize the last binFor resolution: export streams
	// are near-time-ordered, so consecutive records overwhelmingly share
	// an hour and skip the slide/claim logic entirely. curHour is -1 when
	// the memo is invalid (fresh shard, or the ring was reshaped).
	curHour int
	curSlot int

	dropped [nReasons]uint64
	late    uint64

	// newestNano is the freshness watermark: the newest First timestamp
	// (UnixNano) of any record binned into this shard. In-memory only —
	// it is intentionally NOT serialized (frame byte-compatibility) and
	// a restored shard starts cold, exactly like its bins' recency must
	// be re-proven by live traffic.
	newestNano int64

	// Interned prefix counters. prefixIdx is the canonical index over every
	// prefix this shard has seen; prefix4Idx is the hot-path shortcut for
	// IPv4 prefixes at exactly cfg.PrefixBits (every kept record's prefix —
	// the filter only keeps IPv4), keyed by the masked big-endian address
	// word. internPrefix keeps the two in sync.
	prefixIdx   map[netip.Prefix]uint32
	prefix4Idx  map[uint32]uint32
	prefix4Mask uint32
	prefixList  []netip.Prefix
	prefixCount []uint64
	// lastPrefKey/lastPrefIdx memoize the most recent fast-index hit:
	// client records cluster by network, so runs of records share a
	// prefix and skip even the int-keyed map probe. Indexes are
	// append-only, so a memoized entry never goes stale.
	lastPrefKey uint32
	lastPrefIdx uint32
	lastPrefOK  bool

	// Interned district counters; hasDistricts plays the role the nil-ness
	// of the old district map played (rollup enabled).
	hasDistricts  bool
	districtIdx   map[string]uint32
	districtIDs   []string
	districtCount []uint64
	located       uint64
}

// New creates an empty shard.
func New(cfg Config) *Analytics {
	cfg = cfg.withDefaults()
	a := &Analytics{
		cfg:        cfg,
		filter:     *cfg.Filter,
		cfilter:    cfg.Filter.Compile(),
		binHour:    make([]int32, cfg.WindowHours),
		binFlows:   make([]float64, cfg.WindowHours),
		binBytes:   make([]float64, cfg.WindowHours),
		maxHour:    -1,
		archiveMin: -1,
		curHour:    -1,
		prefixIdx:  make(map[netip.Prefix]uint32),
		prefix4Idx: make(map[uint32]uint32),
	}
	for i := range a.binHour {
		a.binHour[i] = -1
	}
	a.prefix4Mask = ^uint32(0) << (32 - cfg.PrefixBits)
	if cfg.Origin.Nanosecond() == 0 {
		a.originSec = cfg.Origin.Unix()
		a.originWhole = true
	}
	if cfg.DB != nil && cfg.Model != nil {
		a.enableDistricts()
	}
	return a
}

// enableDistricts turns the per-district rollup on (idempotent).
func (a *Analytics) enableDistricts() {
	if a.hasDistricts {
		return
	}
	a.hasDistricts = true
	a.districtIdx = make(map[string]uint32)
}

// internPrefix returns the counter index for p, allocating one on first
// sight and registering the IPv4 fast-index entry when p matches the
// hot-path shape.
func (a *Analytics) internPrefix(p netip.Prefix) uint32 {
	if idx, ok := a.prefixIdx[p]; ok {
		return idx
	}
	idx := uint32(len(a.prefixList))
	a.prefixIdx[p] = idx
	a.prefixList = append(a.prefixList, p)
	a.prefixCount = append(a.prefixCount, 0)
	if p.Bits() == a.cfg.PrefixBits && p.Addr().Is4() {
		b := p.Addr().As4()
		a.prefix4Idx[binary.BigEndian.Uint32(b[:])] = idx
	}
	return idx
}

// internDistrict returns the counter index for a district ID, allocating
// one on first sight.
func (a *Analytics) internDistrict(id string) uint32 {
	if idx, ok := a.districtIdx[id]; ok {
		return idx
	}
	idx := uint32(len(a.districtIDs))
	a.districtIdx[id] = idx
	a.districtIDs = append(a.districtIDs, id)
	a.districtCount = append(a.districtCount, 0)
	return idx
}

// Ingest runs one record batch through the filter and into every live
// aggregate. The batch is not retained.
func (a *Analytics) Ingest(recs []netflow.Record) {
	for i := range recs {
		a.ingest(&recs[i])
	}
}

func (a *Analytics) ingest(r *netflow.Record) {
	reason := a.cfilter.Classify(r)
	a.dropped[reason]++
	if reason != core.Kept {
		return
	}

	// Sliding hourly window. The bucket index is hours since Origin;
	// advancing past the ring's head evicts the oldest buckets. The
	// explicit before-Origin check matters: negative sub-hour durations
	// would truncate to bucket 0 otherwise. For whole-second Origins the
	// binning runs on integer seconds — Unix() floors toward -inf, so
	// sec < originSec is exactly First.Before(Origin), and for the
	// non-negative remainder the sub-second part can never push the
	// division across an hour boundary.
	var h int
	if a.originWhole {
		sec := r.First.Unix()
		if sec < a.originSec {
			a.late++
			return
		}
		h = int((sec - a.originSec) / 3600)
	} else {
		if r.First.Before(a.cfg.Origin) {
			a.late++
			return
		}
		h = int(r.First.Sub(a.cfg.Origin) / time.Hour)
	}
	slot := a.curSlot
	if h != a.curHour {
		slot = a.binFor(h)
		if slot < 0 {
			a.late++
			return
		}
	}
	a.binFlows[slot]++
	a.binBytes[slot] += float64(r.Bytes)
	if n := r.First.UnixNano(); n > a.newestNano {
		a.newestNano = n
	}

	// Top-K active client prefixes. Kept records are CDN-to-user, so the
	// client is the destination — and always IPv4 (the filter drops the
	// rest), so the masked-word fast index covers the whole kept stream.
	b := r.Dst.As4()
	key := binary.BigEndian.Uint32(b[:]) & a.prefix4Mask
	if a.lastPrefOK && key == a.lastPrefKey {
		a.prefixCount[a.lastPrefIdx]++
	} else {
		idx, ok := a.prefix4Idx[key]
		if !ok {
			if p, err := r.Dst.Prefix(a.cfg.PrefixBits); err == nil {
				idx, ok = a.internPrefix(p), true
			}
		}
		if ok {
			a.prefixCount[idx]++
			a.lastPrefKey, a.lastPrefIdx, a.lastPrefOK = key, idx, true
		}
	}

	// Per-district rollup. A shard can hold district counts without a DB
	// (restored checkpoint state merged into a sidecar-less reader); it
	// keeps the counts but cannot locate new records.
	if a.hasDistricts && a.cfg.DB != nil {
		if entry, ok := a.cfg.DB.Locate(r.Dst); ok {
			a.located++
			a.districtCount[a.internDistrict(entry.DistrictID)]++
		}
	}
}

// binFor resolves hour h to its ring slot, growing an archive window or
// sliding a live one as needed (resetting every slot slid over), and
// claims the slot if its previous occupant was evicted. It returns -1 when
// h is too late for the current window — including implausibly far-future
// hours (>= MaxWindowHours: a forged timestamp or garbage exporter clock
// must not grow an archive ring past the length reads accept back, nor
// slide a live window over every real bin). The caller counts the record
// (or merged bin) as Late. Shared by ingest and Merge so the two advance
// the window byte-identically.
func (a *Analytics) binFor(h int) int {
	if h >= MaxWindowHours {
		return -1
	}
	if a.cfg.Archive {
		a.ensureArchiveWindow(h)
	}
	w := a.cfg.WindowHours
	switch {
	case a.maxHour >= 0 && h <= a.maxHour-w:
		return -1
	case h > a.maxHour:
		// Reset every slot the window slides over (at most w of them).
		from := a.maxHour + 1
		if from < h-w+1 {
			from = h - w + 1
		}
		for k := from; k <= h; k++ {
			a.binHour[k%w] = -1
		}
		a.maxHour = h
	}
	slot := h % w
	if a.binHour[slot] != int32(h) {
		a.binHour[slot] = int32(h)
		a.binFlows[slot] = 0
		a.binBytes[slot] = 0
	}
	a.curHour, a.curSlot = h, slot
	return slot
}

// archiveGrowQuantum rounds archive-window growth up so a long capture
// reallocates the ring O(span/quantum) times instead of once per new
// hour. The rounded size is a function of the final hour span alone, so
// marshaled archive state stays deterministic across arrival orders.
const archiveGrowQuantum = 64

// ensureArchiveWindow widens an Archive shard's ring so hour h fits
// without evicting any populated bin. A no-op for live (sliding) shards.
func (a *Analytics) ensureArchiveWindow(h int) {
	if !a.cfg.Archive {
		return
	}
	lo, hi := h, h
	if a.archiveMin >= 0 && a.archiveMin < lo {
		lo = a.archiveMin
	}
	if a.maxHour > hi {
		hi = a.maxHour
	}
	if need := hi - lo + 1; need > a.cfg.WindowHours {
		w := (need + archiveGrowQuantum - 1) / archiveGrowQuantum * archiveGrowQuantum
		hour := make([]int32, w)
		flows := make([]float64, w)
		bytes := make([]float64, w)
		for i := range hour {
			hour[i] = -1
		}
		for s, bh := range a.binHour {
			if bh >= 0 {
				d := int(bh) % w
				hour[d] = bh
				flows[d] = a.binFlows[s]
				bytes[d] = a.binBytes[s]
			}
		}
		a.binHour, a.binFlows, a.binBytes = hour, flows, bytes
		a.cfg.WindowHours = w
		// The ring was reshaped: every memoized slot is stale.
		a.curHour = -1
	}
	if a.archiveMin < 0 || h < a.archiveMin {
		a.archiveMin = h
	}
}

// Merge folds other into a without modifying other. Both shards must
// share one Origin; other's window length may differ (a restored archive
// frame can be wider than the live window — its overflow bins evict or
// count late against a's window like any arrival). Aggregation is
// commutative, so any merge order yields the same result; incremental
// callers (the ingest pipeline's snapshot) merge one locked shard at a
// time instead of quiescing them all.
func (a *Analytics) Merge(other *Analytics) {
	// Fold the incoming bins oldest hour first — the order live ingestion
	// would have seen them. Ring-slot order would let a newer incoming bin
	// slide the window before an older (but still in-order) one is folded,
	// miscounting it as late; chronological order keeps merging a shard
	// that spans more hours than this window (the store's compacted
	// archive frames) deterministic, with the overflow evicted silently
	// exactly as live ingestion evicts. binFor applies the same
	// MaxWindowHours plausibility bound as ingest: a shard restored from
	// before the bound (or hand-built) must not poison this one.
	bins := other.sortedBins()
	for i := range bins {
		bin := &bins[i]
		slot := a.binFor(bin.hour)
		if slot < 0 {
			a.late += uint64(bin.flows)
			continue
		}
		a.binFlows[slot] += bin.flows
		a.binBytes[slot] += bin.bytes
	}
	for i, n := range other.dropped {
		a.dropped[i] += n
	}
	a.late += other.late
	for i, p := range other.prefixList {
		a.prefixCount[a.internPrefix(p)] += other.prefixCount[i]
	}
	if other.hasDistricts {
		// Adopt the rollup even if this shard has no geolocation sidecar:
		// restored checkpoint frames carry district counts that must
		// survive a merge into a DB-less shard (a read-only query opens
		// the store without the sidecar the collector ran with).
		a.enableDistricts()
		for i, id := range other.districtIDs {
			a.districtCount[a.internDistrict(id)] += other.districtCount[i]
		}
	}
	a.located += other.located
	if other.newestNano > a.newestNano {
		a.newestNano = other.newestNano
	}
}

// EachPrefix calls fn for every interned client prefix with its kept
// flow count, in interning order. Snapshots truncate the prefix table at
// TopK for transport; the tier folds need the full set to feed the
// cardinality and persistence sketches, which this enumerates without
// materializing a sorted copy.
func (a *Analytics) EachPrefix(fn func(p netip.Prefix, flows uint64)) {
	for i, p := range a.prefixList {
		fn(p, a.prefixCount[i])
	}
}

// Watermark returns the newest record start timestamp binned into this
// shard (the freshness watermark), or the zero time before any.
func (a *Analytics) Watermark() time.Time {
	if a.newestNano == 0 {
		return time.Time{}
	}
	return time.Unix(0, a.newestNano)
}

// sortedBins returns the populated window bins, oldest hour first — the
// canonical bin order Merge folds in and MarshalBinary persists.
func (a *Analytics) sortedBins() []hourBin {
	bins := make([]hourBin, 0, len(a.binHour))
	for s, h := range a.binHour {
		if h >= 0 {
			bins = append(bins, hourBin{hour: int(h), flows: a.binFlows[s], bytes: a.binBytes[s]})
		}
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i].hour < bins[j].hour })
	return bins
}

// Collect merges the shards (in slice order, so results are reproducible)
// and renders one Snapshot. The shards are not modified; callers must stop
// or lock them for the duration.
func Collect(cfg Config, shards []*Analytics) *Snapshot {
	m := New(cfg)
	for _, s := range shards {
		m.Merge(s)
	}
	return m.snapshot()
}

// Snapshot reports this shard's aggregates alone; the pipeline uses
// Collect across all shards instead.
func (a *Analytics) Snapshot() *Snapshot { return a.snapshot() }

// Bounds reports the populated hour coverage of the sliding window as
// inclusive hour indices relative to Origin. ok is false when no kept
// record has landed in the window yet. The durable store records the
// bounds as checkpoint-frame metadata for time-range frame selection,
// and consults the live tails' bounds on every ETag derivation
// (store.Version) — which is why the Archive fast path below matters.
func (a *Analytics) Bounds() (minHour, maxHour int, ok bool) {
	if a.maxHour < 0 {
		return 0, 0, false
	}
	if a.cfg.Archive {
		// Archive shards never evict, so the tracked extremes are exact:
		// archiveMin is the lowest binned hour and the bin at maxHour is
		// populated by construction. O(1) instead of a ring scan — the
		// store calls this under its append mutex on every API request.
		if a.archiveMin < 0 {
			return 0, 0, false
		}
		return a.archiveMin, a.maxHour, true
	}
	minHour = -1
	for _, h := range a.binHour {
		if h >= 0 && (minHour < 0 || int(h) < minHour) {
			minHour = int(h)
		}
	}
	if minHour < 0 {
		// Every ring slot is empty: records advanced maxHour but their
		// own buckets were since evicted, or only Merge moved the window.
		return 0, 0, false
	}
	return minHour, a.maxHour, true
}

// SnapshotRange renders a snapshot restricted to hours with
// from <= Time < to. Zero bounds are open: a zero from means "since
// Origin", a zero to means "until now". Spikes are re-detected on the
// trimmed series (so head hours of the range lack trailing baseline,
// exactly like the head of a live window); the census, prefix and
// district aggregates are not time-resolved and keep shard granularity.
func (a *Analytics) SnapshotRange(from, to time.Time) *Snapshot {
	s := a.snapshot()
	if from.IsZero() && to.IsZero() {
		return s
	}
	kept := s.Hours[:0]
	for _, p := range s.Hours {
		if !from.IsZero() && p.Time.Before(from) {
			continue
		}
		if !to.IsZero() && !p.Time.Before(to) {
			continue
		}
		kept = append(kept, p)
	}
	s.Hours = kept
	if len(kept) > 0 {
		s.SeriesStart = kept[0].Hour
	} else {
		s.Hours = nil
		s.SeriesStart = 0
	}
	s.Spikes = detectSpikes(s.Hours, a.cfg)
	return s
}

func (a *Analytics) snapshot() *Snapshot {
	cfg := a.cfg
	s := &Snapshot{
		Origin:      cfg.Origin,
		WindowHours: cfg.WindowHours,
		Late:        a.late,
		Located:     a.located,
	}

	// Census in the batch pipeline's shape.
	s.Census = core.Census{Dropped: make(map[core.DropReason]int)}
	for i, n := range a.dropped {
		s.Census.Total += int(n)
		if core.DropReason(i) == core.Kept {
			s.Census.Kept = int(n)
		} else if n > 0 {
			s.Census.Dropped[core.DropReason(i)] = int(n)
		}
	}

	// The populated window, oldest hour first.
	if a.maxHour >= 0 {
		lo := a.maxHour - cfg.WindowHours + 1
		if lo < 0 {
			lo = 0
		}
		s.SeriesStart = lo
		for h := lo; h <= a.maxHour; h++ {
			slot := h % cfg.WindowHours
			p := HourPoint{Hour: h, Time: cfg.Origin.Add(time.Duration(h) * time.Hour)}
			if a.binHour[slot] == int32(h) {
				p.Flows = a.binFlows[slot]
				p.Bytes = a.binBytes[slot]
			}
			s.Hours = append(s.Hours, p)
		}
	}

	s.Spikes = detectSpikes(s.Hours, cfg)
	counts := make([]PrefixCount, len(a.prefixList))
	for i, p := range a.prefixList {
		counts[i] = PrefixCount{Prefix: p, Flows: a.prefixCount[i]}
	}
	s.TopPrefixes = topPrefixes(counts, cfg.TopK)

	if a.hasDistricts {
		ids := append([]string(nil), a.districtIDs...)
		sort.Strings(ids)
		for _, id := range ids {
			dc := DistrictCount{ID: id, Flows: a.districtCount[a.districtIdx[id]]}
			if cfg.Model != nil {
				if d, ok := cfg.Model.DistrictByID(id); ok {
					dc.Name, dc.StateCode = d.Name, d.StateCode
				}
			}
			s.Districts = append(s.Districts, dc)
		}
	}
	return s
}

// detectSpikes scans the populated window with a trailing-mean baseline.
// It runs on merged, deterministic bins, so spike output is independent of
// worker count and arrival order.
func detectSpikes(hours []HourPoint, cfg Config) []Spike {
	var out []Spike
	for i := range hours {
		if i < cfg.SpikeHistory {
			continue // not enough local history for a baseline
		}
		var sum float64
		for j := i - cfg.SpikeHistory; j < i; j++ {
			sum += hours[j].Flows
		}
		baseline := sum / float64(cfg.SpikeHistory)
		if baseline <= 0 || hours[i].Flows < cfg.SpikeMinFlows {
			continue
		}
		ratio := hours[i].Flows / baseline
		if ratio >= cfg.SpikeFactor {
			out = append(out, Spike{
				Hour:     hours[i].Hour,
				Time:     hours[i].Time,
				Flows:    hours[i].Flows,
				Baseline: baseline,
				Ratio:    ratio,
			})
		}
	}
	return out
}

// topPrefixes ranks prefixes by flow count, ties broken by prefix order so
// the leaderboard is deterministic. It sorts counts in place.
func topPrefixes(counts []PrefixCount, k int) []PrefixCount {
	out := counts
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flows != out[j].Flows {
			return out[i].Flows > out[j].Flows
		}
		a, b := out[i].Prefix, out[j].Prefix
		if c := a.Addr().Compare(b.Addr()); c != 0 {
			return c < 0
		}
		return a.Bits() < b.Bits()
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// HourPoint is one bucket of the sliding hourly window.
type HourPoint struct {
	Hour  int       `json:"hour"`
	Time  time.Time `json:"time"`
	Flows float64   `json:"flows"`
	Bytes float64   `json:"bytes"`
}

// Spike is one hour flagged by the launch/attention detector.
type Spike struct {
	Hour     int       `json:"hour"`
	Time     time.Time `json:"time"`
	Flows    float64   `json:"flows"`
	Baseline float64   `json:"baseline"`
	Ratio    float64   `json:"ratio"`
}

// PrefixCount is one row of the active-prefix leaderboard.
type PrefixCount struct {
	Prefix netip.Prefix `json:"prefix"`
	Flows  uint64       `json:"flows"`
}

// DistrictCount is one row of the per-district rollup.
type DistrictCount struct {
	ID        string `json:"id"`
	Name      string `json:"name"`
	StateCode string `json:"state"`
	Flows     uint64 `json:"flows"`
}

// Snapshot is a consistent view of the merged aggregates, shaped for the
// collectord /snapshot endpoint and for comparison against internal/core.
type Snapshot struct {
	Origin      time.Time `json:"origin"`
	WindowHours int       `json:"window_hours"`
	// SeriesStart is the hour index of Hours[0] relative to Origin.
	SeriesStart int             `json:"series_start"`
	Hours       []HourPoint     `json:"hours"`
	Census      core.Census     `json:"census"`
	Spikes      []Spike         `json:"spikes"`
	TopPrefixes []PrefixCount   `json:"top_prefixes"`
	Districts   []DistrictCount `json:"districts,omitempty"`
	// Late counts kept records that arrived after their bucket left the
	// window (or predate Origin).
	Late uint64 `json:"late"`
	// Located counts kept records the geolocation sidecar could place.
	Located uint64 `json:"located"`
}

// Series renders the snapshot's window as flow/byte time series of
// WindowHours hourly bins. The series origin is Origin when the window has
// not slid, or the oldest covered hour otherwise.
func (s *Snapshot) Series() (flows, bytes *stats.TimeSeries) {
	start := s.Origin.Add(time.Duration(s.SeriesStart) * time.Hour)
	flows = stats.NewTimeSeries(start, time.Hour, s.WindowHours)
	bytes = stats.NewTimeSeries(start, time.Hour, s.WindowHours)
	for _, p := range s.Hours {
		flows.Add(p.Time, p.Flows)
		bytes.Add(p.Time, p.Bytes)
	}
	return flows, bytes
}

// Figure2 derives the paper's Figure-2 result from the snapshot series via
// the same core code path the batch pipeline uses, so a stream that saw
// every record produces a byte-identical result. It requires an
// origin-anchored window that still covers every study hour (flows
// crossing the capture's final midnight land just past the study end, so
// live configurations size WindowHours with some spill margin); hours
// beyond the study window are ignored, exactly as the batch pipeline
// drops records outside it.
func (s *Snapshot) Figure2(curve *adoption.Curve) (*core.Figure2Result, error) {
	hours := entime.StudyHours()
	if !s.Origin.Equal(entime.StudyStart) || s.SeriesStart != 0 || s.WindowHours < hours {
		return nil, fmt.Errorf("streaming: window [%s +%dh, start %d] does not cover the study hours",
			s.Origin, s.WindowHours, s.SeriesStart)
	}
	flows := stats.NewTimeSeries(entime.StudyStart, time.Hour, hours)
	bytes := stats.NewTimeSeries(entime.StudyStart, time.Hour, hours)
	for _, p := range s.Hours {
		if p.Hour < hours {
			flows.Add(p.Time, p.Flows)
			bytes.Add(p.Time, p.Bytes)
		}
	}
	return core.Figure2FromSeries(flows, bytes, curve)
}
