package streaming

import "cwatrace/internal/core"

// FromSnapshot rebuilds an Analytics shard from a rendered Snapshot, the
// inverse of snapshot() for everything Merge consumes. The cluster query
// router uses it to make shard responses mergeable again: each collectord
// node renders its own aggregates to the v1 wire shape, the router
// reconstructs one Analytics per shard and folds them with Merge, and the
// re-rendered union is byte-identical to what a single node holding every
// record would have served.
//
// The snapshot must be a full rendering (no field selection, no top-K
// truncation): omitted sections come back zero, and a truncated
// leaderboard would merge as if the tail prefixes never existed. Two
// render-time derivations are intentionally not state and need no
// restoring: spikes are recomputed from the hourly series on the next
// snapshot, and Census.Total is the sum of the per-reason counters.
//
// Zero-flow gap hours inside the rendered window reconstruct as populated
// empty bins. The live shard cannot tell the two apart either — snapshot()
// renders every hour of the covered span, populated or not — so the
// round trip stays byte-identical.
func FromSnapshot(s *Snapshot) *Analytics {
	a := New(Config{Origin: s.Origin, WindowHours: s.WindowHours})
	for i := range s.Hours {
		p := &s.Hours[i]
		slot := a.binFor(p.Hour)
		if slot < 0 {
			// Cannot happen for a self-consistent snapshot (every rendered
			// hour fits its own window); a hand-built one degrades exactly
			// like live ingestion of an out-of-window record.
			a.late += uint64(p.Flows)
			continue
		}
		a.binFlows[slot] = p.Flows
		a.binBytes[slot] = p.Bytes
	}

	for reason, n := range s.Census.Dropped {
		if r := int(reason); r >= 0 && r < len(a.dropped) {
			a.dropped[r] = uint64(n)
		}
	}
	a.dropped[core.Kept] = uint64(s.Census.Kept)
	a.late += s.Late

	for _, pc := range s.TopPrefixes {
		a.prefixCount[a.internPrefix(pc.Prefix)] = pc.Flows
	}

	if len(s.Districts) > 0 || s.Located > 0 {
		a.enableDistricts()
		for _, dc := range s.Districts {
			a.districtCount[a.internDistrict(dc.ID)] = dc.Flows
		}
	}
	a.located = s.Located
	return a
}
