// Package centralized implements the baseline the CWA's designers rejected:
// a centralized contact-tracing architecture in which phones report their
// encounter history to a central server that performs the matching and
// pushes notifications. The paper motivates the decentralized design with
// the privacy concerns this architecture raises ("Centralized contact
// tracking by apps that report contacts to a central infrastructure raise
// privacy concerns"); the A2 ablation bench contrasts the two on traffic
// volume and on what the server learns.
package centralized

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// DeviceID is the server-assigned identity of a registered phone. Unlike
// the decentralized design's rotating RPIs, it is stable — which is exactly
// the privacy problem.
type DeviceID uint64

// Encounter is one reported contact: the reporting device saw the other
// device's broadcast identifier.
type Encounter struct {
	Other       DeviceID
	Day         int
	DurationMin int
}

// encounterWireBytes is the upload size of one encounter record.
const encounterWireBytes = 24

// pushWireBytes is the size of one exposure push notification.
const pushWireBytes = 512

// registrationWireBytes is the one-time registration exchange size.
const registrationWireBytes = 1024

// Server is the central matching service.
type Server struct {
	mu     sync.Mutex
	nextID DeviceID
	known  map[DeviceID]bool
	// graph accumulates every (reporter, contact) pair the server has
	// learned — the privacy cost ledger.
	graph map[[2]DeviceID]bool
	// pendingNotify lists devices to be notified of exposure.
	pendingNotify map[DeviceID]bool

	uploads       int
	bytesUp       int64
	bytesDown     int64
	notifications int
}

// NewServer creates an empty server.
func NewServer() *Server {
	return &Server{
		known:         make(map[DeviceID]bool),
		graph:         make(map[[2]DeviceID]bool),
		pendingNotify: make(map[DeviceID]bool),
	}
}

// Register enrolls a new device and returns its stable identity.
func (s *Server) Register() DeviceID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	s.known[id] = true
	s.bytesUp += registrationWireBytes / 2
	s.bytesDown += registrationWireBytes / 2
	return id
}

// ErrUnknownDevice is returned for uploads from unregistered devices.
var ErrUnknownDevice = errors.New("centralized: unknown device")

// ReportPositive uploads a positive device's full encounter history. The
// server learns the reporter's social graph and schedules notifications
// for every contact.
func (s *Server) ReportPositive(reporter DeviceID, history []Encounter) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.known[reporter] {
		return ErrUnknownDevice
	}
	s.uploads++
	s.bytesUp += int64(len(history)*encounterWireBytes) + 256
	for _, e := range history {
		if !s.known[e.Other] {
			return fmt.Errorf("centralized: history references unknown device %d", e.Other)
		}
		s.graph[[2]DeviceID{reporter, e.Other}] = true
		if !s.pendingNotify[e.Other] {
			s.pendingNotify[e.Other] = true
		}
	}
	return nil
}

// Push delivers the pending exposure notifications and returns the set of
// notified devices (sorted, for deterministic tests).
func (s *Server) Push() []DeviceID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DeviceID, 0, len(s.pendingNotify))
	for id := range s.pendingNotify {
		out = append(out, id)
		delete(s.pendingNotify, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	s.notifications += len(out)
	s.bytesDown += int64(len(out) * pushWireBytes)
	return out
}

// Stats summarizes the server's traffic and knowledge.
type Stats struct {
	Registered    int
	Uploads       int
	Notifications int
	BytesUp       int64
	BytesDown     int64
	// KnownPairs is the number of (reporter, contact) edges the server
	// has learned: the privacy exposure of the centralized design. The
	// decentralized architecture's equivalent is zero by construction.
	KnownPairs int
	// IdentifiedDevices is how many distinct devices appear in the
	// server's graph (as reporter or contact).
	IdentifiedDevices int
}

// Stats returns a snapshot.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	devices := make(map[DeviceID]bool)
	for pair := range s.graph {
		devices[pair[0]] = true
		devices[pair[1]] = true
	}
	return Stats{
		Registered:        len(s.known),
		Uploads:           s.uploads,
		Notifications:     s.notifications,
		BytesUp:           s.bytesUp,
		BytesDown:         s.bytesDown,
		KnownPairs:        len(s.graph),
		IdentifiedDevices: len(devices),
	}
}
