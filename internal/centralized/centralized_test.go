package centralized

import (
	"testing"
)

func TestRegisterAssignsDistinctIDs(t *testing.T) {
	s := NewServer()
	a, b := s.Register(), s.Register()
	if a == b {
		t.Fatal("IDs must be distinct")
	}
	if s.Stats().Registered != 2 {
		t.Fatalf("registered = %d", s.Stats().Registered)
	}
}

func TestReportPositiveLearnsGraph(t *testing.T) {
	s := NewServer()
	a, b, c := s.Register(), s.Register(), s.Register()
	history := []Encounter{
		{Other: b, Day: 1, DurationMin: 20},
		{Other: c, Day: 2, DurationMin: 10},
	}
	if err := s.ReportPositive(a, history); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.KnownPairs != 2 {
		t.Fatalf("pairs = %d, want 2", st.KnownPairs)
	}
	if st.IdentifiedDevices != 3 {
		t.Fatalf("identified = %d, want 3", st.IdentifiedDevices)
	}
	if st.Uploads != 1 {
		t.Fatalf("uploads = %d", st.Uploads)
	}
}

func TestReportPositiveUnknownDevices(t *testing.T) {
	s := NewServer()
	if err := s.ReportPositive(999, nil); err != ErrUnknownDevice {
		t.Fatalf("unknown reporter: %v", err)
	}
	a := s.Register()
	if err := s.ReportPositive(a, []Encounter{{Other: 777, Day: 1}}); err == nil {
		t.Fatal("unknown contact must fail")
	}
}

func TestPushNotifiesContactsOnce(t *testing.T) {
	s := NewServer()
	a, b, c := s.Register(), s.Register(), s.Register()
	if err := s.ReportPositive(a, []Encounter{
		{Other: b, Day: 1}, {Other: c, Day: 1}, {Other: b, Day: 2},
	}); err != nil {
		t.Fatal(err)
	}
	notified := s.Push()
	if len(notified) != 2 {
		t.Fatalf("notified = %v, want b and c once each", notified)
	}
	if notified[0] != b || notified[1] != c {
		t.Fatalf("notified = %v", notified)
	}
	if again := s.Push(); len(again) != 0 {
		t.Fatalf("second push must be empty, got %v", again)
	}
	if s.Stats().Notifications != 2 {
		t.Fatalf("notifications = %d", s.Stats().Notifications)
	}
}

func TestTrafficAccounting(t *testing.T) {
	s := NewServer()
	a, b := s.Register(), s.Register()
	before := s.Stats()
	if err := s.ReportPositive(a, []Encounter{{Other: b, Day: 1}}); err != nil {
		t.Fatal(err)
	}
	s.Push()
	after := s.Stats()
	if after.BytesUp <= before.BytesUp {
		t.Fatal("upload must count upstream bytes")
	}
	if after.BytesDown <= before.BytesDown {
		t.Fatal("push must count downstream bytes")
	}
}

func TestScenarioValidation(t *testing.T) {
	good := ScenarioConfig{Users: 100, Days: 5, EncountersPerDay: 3, PositivesPerDay: 1, KeysPerUpload: 10, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*ScenarioConfig){
		func(c *ScenarioConfig) { c.Users = 1 },
		func(c *ScenarioConfig) { c.Days = 0 },
		func(c *ScenarioConfig) { c.EncountersPerDay = -1 },
		func(c *ScenarioConfig) { c.PositivesPerDay = c.Users + 1 },
		func(c *ScenarioConfig) { c.KeysPerUpload = 0 },
	}
	for i, mut := range cases {
		cfg := good
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// TestComparisonShape verifies the architectural trade-off the paper's
// design implies: the decentralized design moves far more bytes downstream
// (everyone downloads all keys daily) but reveals no contact graph, while
// the centralized baseline is cheap on traffic and expensive on privacy.
func TestComparisonShape(t *testing.T) {
	cmp, err := RunComparison(ScenarioConfig{
		Users: 2000, Days: 10, EncountersPerDay: 4,
		PositivesPerDay: 2, KeysPerUpload: 10, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.DownloadFactor < 10 {
		t.Fatalf("decentralized should dominate downstream bytes, factor %.1f", cmp.DownloadFactor)
	}
	if cmp.Centralized.ContactPairsRevealed == 0 {
		t.Fatal("centralized server must learn contact pairs")
	}
	if cmp.Decentralized.ContactPairsRevealed != 0 {
		t.Fatal("decentralized server must learn nothing")
	}
	if cmp.Centralized.NotifiedIdentified == 0 {
		t.Fatal("centralized server identifies notified users")
	}
	if cmp.Decentralized.NotifiedIdentified != 0 {
		t.Fatal("decentralized notifications are local to phones")
	}
}

func TestComparisonDeterministic(t *testing.T) {
	cfg := ScenarioConfig{
		Users: 500, Days: 5, EncountersPerDay: 3,
		PositivesPerDay: 1, KeysPerUpload: 5, Seed: 11,
	}
	a, err := RunComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("nondeterministic comparison: %+v vs %+v", a, b)
	}
}

func TestComparisonInvalidConfig(t *testing.T) {
	if _, err := RunComparison(ScenarioConfig{}); err == nil {
		t.Fatal("invalid config must fail")
	}
}
