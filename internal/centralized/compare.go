package centralized

import (
	"fmt"
	"math/rand"

	"cwatrace/internal/cdn"
	"cwatrace/internal/diagkeys"
)

// ScenarioConfig describes a common workload to run through both
// architectures: a population with daily encounters and a trickle of
// positives, over a number of days.
type ScenarioConfig struct {
	Users            int
	Days             int
	EncountersPerDay int
	// PositivesPerDay is the daily count of users who test positive and
	// report.
	PositivesPerDay int
	// KeysPerUpload is the decentralized upload size in TEKs.
	KeysPerUpload int
	Seed          int64
}

// Validate reports configuration errors.
func (c ScenarioConfig) Validate() error {
	if c.Users <= 1 || c.Days <= 0 {
		return fmt.Errorf("centralized: need users > 1 and days > 0")
	}
	if c.EncountersPerDay < 0 || c.PositivesPerDay < 0 {
		return fmt.Errorf("centralized: negative workload")
	}
	if c.PositivesPerDay > c.Users {
		return fmt.Errorf("centralized: more positives than users")
	}
	if c.KeysPerUpload <= 0 {
		return fmt.Errorf("centralized: KeysPerUpload must be positive")
	}
	return nil
}

// ArchitectureCost is the per-architecture outcome of a scenario.
type ArchitectureCost struct {
	// ServerBytesDown is the total server->client volume (the direction
	// the paper's vantage point measures).
	ServerBytesDown int64
	// ServerBytesUp is client->server volume.
	ServerBytesUp int64
	// ContactPairsRevealed is what the server learns about who met whom.
	ContactPairsRevealed int
	// NotifiedIdentified counts exposed users the server can identify.
	NotifiedIdentified int
}

// Comparison holds both architectures' costs for one scenario.
type Comparison struct {
	Centralized   ArchitectureCost
	Decentralized ArchitectureCost
	// DownloadFactor is decentralized/centralized downstream bytes: the
	// decentralized design trades mass daily downloads for privacy.
	DownloadFactor float64
}

// RunComparison executes the scenario against the real centralized server
// implementation and the decentralized cost model (derived from the actual
// CWA wire formats in diagkeys/cdn).
func RunComparison(cfg ScenarioConfig) (*Comparison, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// --- Centralized: drive the real server. ---
	srv := NewServer()
	ids := make([]DeviceID, cfg.Users)
	for i := range ids {
		ids[i] = srv.Register()
	}
	// Each user keeps a rolling 14-day encounter log.
	logs := make([][]Encounter, cfg.Users)
	for day := 0; day < cfg.Days; day++ {
		for u := 0; u < cfg.Users; u++ {
			for k := 0; k < cfg.EncountersPerDay; k++ {
				other := rng.Intn(cfg.Users)
				if other == u {
					continue
				}
				logs[u] = append(logs[u], Encounter{
					Other: ids[other], Day: day, DurationMin: 5 + rng.Intn(30),
				})
			}
		}
		for p := 0; p < cfg.PositivesPerDay; p++ {
			u := rng.Intn(cfg.Users)
			if err := srv.ReportPositive(ids[u], logs[u]); err != nil {
				return nil, err
			}
		}
		srv.Push()
	}
	cs := srv.Stats()

	// --- Decentralized: cost model from the real wire formats. ---
	// Every user downloads the day package daily; uploads are the only
	// positive-user traffic. Package size uses the real export encoding
	// with the padding floor.
	var de ArchitectureCost
	for day := 0; day < cfg.Days; day++ {
		keys := cfg.PositivesPerDay * cfg.KeysPerUpload
		if keys < diagkeys.MinKeysPerExport {
			keys = diagkeys.MinKeysPerExport
		}
		pkg := diagkeys.WireSize(keys) + cdn.TLSServerOverhead + cdn.HTTPHeaderBytes
		de.ServerBytesDown += int64(cfg.Users * pkg)
		// Uploads: TAN + submission exchanges.
		de.ServerBytesUp += int64(cfg.PositivesPerDay * (2800 + 512))
		de.ServerBytesDown += int64(cfg.PositivesPerDay * 2 *
			(cdn.TLSServerOverhead + cdn.HTTPHeaderBytes + cdn.SmallJSONReply))
	}
	// The decentralized server learns no contact pairs and cannot
	// identify notified users: matching happens on the phones.
	de.ContactPairsRevealed = 0
	de.NotifiedIdentified = 0

	cmp := &Comparison{
		Centralized: ArchitectureCost{
			ServerBytesDown:      cs.BytesDown,
			ServerBytesUp:        cs.BytesUp,
			ContactPairsRevealed: cs.KnownPairs,
			NotifiedIdentified:   cs.Notifications,
		},
		Decentralized: de,
	}
	if cs.BytesDown > 0 {
		cmp.DownloadFactor = float64(de.ServerBytesDown) / float64(cs.BytesDown)
	}
	return cmp, nil
}
