package adoption

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"cwatrace/internal/entime"
	"cwatrace/internal/geo"
)

func TestDefaultCurveAnchors(t *testing.T) {
	c := DefaultCurve()
	// Paper: 6.4M downloads 36 hours after release.
	got := c.Cumulative(entime.AppRelease.Add(36 * time.Hour))
	if math.Abs(got-6_400_000) > 1 {
		t.Fatalf("36h downloads = %.0f, want 6.4M", got)
	}
	// Paper: 16.2M total by July 24.
	jul24 := time.Date(2020, time.July, 24, 0, 0, 0, 0, entime.Berlin)
	if got := c.Cumulative(jul24); math.Abs(got-16_200_000) > 1 {
		t.Fatalf("July 24 downloads = %.0f, want 16.2M", got)
	}
	if got := c.Cumulative(entime.AppRelease); got != 0 {
		t.Fatalf("downloads at release = %.0f, want 0", got)
	}
}

func TestCurveMonotone(t *testing.T) {
	c := DefaultCurve()
	prev := -1.0
	for ts := entime.StudyStart; ts.Before(entime.StudyEnd); ts = ts.Add(time.Hour) {
		v := c.Cumulative(ts)
		if v < prev {
			t.Fatalf("curve decreases at %s: %f < %f", ts, v, prev)
		}
		prev = v
	}
}

func TestCurveClamping(t *testing.T) {
	c := DefaultCurve()
	if got := c.Cumulative(entime.AppRelease.Add(-24 * time.Hour)); got != 0 {
		t.Fatalf("pre-release = %.0f", got)
	}
	far := time.Date(2021, time.January, 1, 0, 0, 0, 0, entime.Berlin)
	if got := c.Cumulative(far); got != c.Final() {
		t.Fatalf("post-curve = %.0f, want final %.0f", got, c.Final())
	}
}

func TestInstallsBetween(t *testing.T) {
	c := DefaultCurve()
	day1 := c.InstallsBetween(entime.AppRelease, entime.AppRelease.Add(24*time.Hour))
	if day1 < 3_000_000 {
		t.Fatalf("first-day installs = %.0f, expected millions", day1)
	}
	if got := c.InstallsBetween(entime.AppRelease.Add(time.Hour), entime.AppRelease); got != 0 {
		t.Fatalf("inverted window = %f, want 0", got)
	}
	// Additivity.
	mid := entime.AppRelease.Add(12 * time.Hour)
	end := entime.AppRelease.Add(24 * time.Hour)
	sum := c.InstallsBetween(entime.AppRelease, mid) + c.InstallsBetween(mid, end)
	if math.Abs(sum-day1) > 1e-6 {
		t.Fatalf("windows must be additive: %f vs %f", sum, day1)
	}
}

func TestNewCurveValidation(t *testing.T) {
	t0 := entime.AppRelease
	if _, err := NewCurve([]Anchor{{t0, 0}}); err == nil {
		t.Error("single anchor must fail")
	}
	if _, err := NewCurve([]Anchor{{t0, 0}, {t0, 5}}); err == nil {
		t.Error("duplicate times must fail")
	}
	if _, err := NewCurve([]Anchor{{t0, 10}, {t0.Add(time.Hour), 5}}); err == nil {
		t.Error("decreasing cumulative must fail")
	}
}

func TestAttentionPulses(t *testing.T) {
	a := DefaultAttention()
	before := a.At(entime.AppRelease.Add(-time.Hour))
	atRelease := a.At(entime.AppRelease)
	if atRelease <= before*3 {
		t.Fatalf("release pulse too weak: %f -> %f", before, atRelease)
	}
	// Attention decays after the release...
	day20 := a.At(day(20))
	if day20 >= atRelease/2 {
		t.Fatalf("attention must decay: %f at release, %f on June 20", atRelease, day20)
	}
	// ...and resurges with the June 23 lockdown news.
	day23 := a.At(entime.OutbreakGuetersloh.Add(2 * time.Hour))
	if day23 <= day20 {
		t.Fatalf("June 23 news must lift attention: %f vs %f", day23, day20)
	}
}

func TestAttentionBaseline(t *testing.T) {
	a := Attention{Baseline: 2}
	if got := a.At(day(15)); got != 2 {
		t.Fatalf("pulse-free attention = %f, want baseline", got)
	}
}

func TestDiurnalShape(t *testing.T) {
	var sum float64
	for h := 0; h < 24; h++ {
		v := Diurnal(h)
		if v <= 0 {
			t.Fatalf("Diurnal(%d) = %f, must be positive", h, v)
		}
		sum += v
	}
	if mean := sum / 24; math.Abs(mean-1) > 0.01 {
		t.Fatalf("diurnal mean = %f, want ~1", mean)
	}
	if Diurnal(19) <= Diurnal(3) {
		t.Fatal("evening must out-weigh night")
	}
}

func TestDistrictWeights(t *testing.T) {
	model := geo.Germany()
	w := DistrictWeights(model)
	if len(w) != model.NumDistricts() {
		t.Fatalf("weights = %d, want %d", len(w), model.NumDistricts())
	}
	var sum float64
	for _, v := range w {
		if v <= 0 {
			t.Fatal("all weights must be positive")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %f", sum)
	}
	// Berlin (3.7M, urban) must far outweigh a small rural district.
	ds := model.Districts()
	var berlinW, minW float64 = 0, 1
	for i, d := range ds {
		if d.Name == "Berlin" {
			berlinW = w[i]
		}
		if w[i] < minW {
			minW = w[i]
		}
	}
	if berlinW < minW*20 {
		t.Fatalf("Berlin weight %f vs min %f: urban skew missing", berlinW, minW)
	}
}

func TestSampler(t *testing.T) {
	weights := []float64{0.5, 0.3, 0.2}
	s, err := NewSampler(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	counts := make([]int, 3)
	const draws = 30000
	for i := 0; i < draws; i++ {
		idx := s.Draw(rng)
		if idx < 0 || idx >= 3 {
			t.Fatalf("draw out of range: %d", idx)
		}
		counts[idx]++
	}
	for i, want := range weights {
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.02 {
			t.Errorf("bucket %d: drawn %.3f, want %.3f", i, got, want)
		}
	}
}

func TestSamplerValidation(t *testing.T) {
	if _, err := NewSampler(nil); err == nil {
		t.Error("empty weights must fail")
	}
	if _, err := NewSampler([]float64{1, -1}); err == nil {
		t.Error("negative weight must fail")
	}
	if _, err := NewSampler([]float64{0, 0}); err == nil {
		t.Error("zero-sum weights must fail")
	}
}

func TestSamplerUnnormalizedWeights(t *testing.T) {
	s, err := NewSampler([]float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	counts := make([]int, 2)
	for i := 0; i < 10000; i++ {
		counts[s.Draw(rng)]++
	}
	ratio := float64(counts[0]) / 10000
	if math.Abs(ratio-0.5) > 0.03 {
		t.Fatalf("unnormalized weights mishandled: %f", ratio)
	}
}

func TestCurveShiftedAndScaled(t *testing.T) {
	c := DefaultCurve()
	at := entime.AppRelease.Add(36 * time.Hour)

	shifted := c.Shifted(72 * time.Hour)
	if got := shifted.Cumulative(at.Add(72 * time.Hour)); math.Abs(got-c.Cumulative(at)) > 1e-6 {
		t.Fatalf("shifted curve at t+72h = %f, want %f", got, c.Cumulative(at))
	}
	if got := shifted.Cumulative(entime.AppRelease.Add(24 * time.Hour)); got != 0 {
		t.Fatalf("shifted curve nonzero (%f) before the shifted release", got)
	}

	scaled := c.Scaled(0.5)
	if got, want := scaled.Cumulative(at), 0.5*c.Cumulative(at); math.Abs(got-want) > 1e-6 {
		t.Fatalf("scaled cumulative = %f, want %f", got, want)
	}
	if got := scaled.Final(); got != 8_100_000 {
		t.Fatalf("scaled final = %f, want 8.1M", got)
	}

	// Originals are untouched (copy semantics).
	if got := c.Cumulative(at); math.Abs(got-6_400_000) > 1 {
		t.Fatalf("original curve mutated: %f", got)
	}
}
