// Package adoption models how Germany installed the Corona-Warn-App: the
// national cumulative download curve (calibrated to the officially reported
// store numbers the paper overlays on Figure 2), a media-attention signal
// with pulses at the app release and at the June-23 outbreak news, and the
// allocation of installs to districts.
//
// The paper's anchors: "36 hours after its release, the CWA was downloaded
// 6.4M times (16.2M total downloads by July 24)" and store reporting starts
// June 17. The curve below interpolates public Statista day-level numbers
// between those anchors.
package adoption

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"cwatrace/internal/entime"
	"cwatrace/internal/geo"
)

// Anchor is one (time, cumulative installs) calibration point.
type Anchor struct {
	T   time.Time
	Cum float64
}

// Curve interpolates cumulative national downloads between anchors.
type Curve struct {
	anchors []Anchor
}

// NewCurve builds a curve from anchors, which must be strictly increasing
// in both time and value (cumulative counts cannot decrease).
func NewCurve(anchors []Anchor) (*Curve, error) {
	if len(anchors) < 2 {
		return nil, fmt.Errorf("adoption: need at least 2 anchors")
	}
	sorted := make([]Anchor, len(anchors))
	copy(sorted, anchors)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].T.Before(sorted[j].T) })
	for i := 1; i < len(sorted); i++ {
		if !sorted[i].T.After(sorted[i-1].T) {
			return nil, fmt.Errorf("adoption: duplicate anchor time %s", sorted[i].T)
		}
		if sorted[i].Cum < sorted[i-1].Cum {
			return nil, fmt.Errorf("adoption: cumulative count decreases at %s", sorted[i].T)
		}
	}
	return &Curve{anchors: sorted}, nil
}

// day returns midnight Berlin time of June day d, 2020.
func day(d int) time.Time {
	return time.Date(2020, time.June, d, 0, 0, 0, 0, entime.Berlin)
}

// DefaultCurve returns the calibrated CWA download curve. The +36h point
// (June 17, 14:00) hits the paper's 6.4M; July 24 hits 16.2M.
func DefaultCurve() *Curve {
	c, err := NewCurve([]Anchor{
		{entime.AppRelease, 0},
		{entime.AppRelease.Add(36 * time.Hour), 6_400_000}, // paper anchor
		{day(19), 8_200_000},
		{day(21), 10_100_000},
		{day(23), 11_000_000},
		{day(24), 11_900_000}, // post-lockdown-news bump
		{day(26), 12_600_000},
		{day(30), 13_600_000},
		{time.Date(2020, time.July, 10, 0, 0, 0, 0, entime.Berlin), 15_200_000},
		{time.Date(2020, time.July, 24, 0, 0, 0, 0, entime.Berlin), 16_200_000}, // paper anchor
	})
	if err != nil {
		panic("adoption: default curve invalid: " + err.Error())
	}
	return c
}

// Shifted returns a copy of the curve with every anchor moved by d. The
// scenario layer uses it for release-date counterfactuals (a delayed
// launch moves the whole download history with it).
func (c *Curve) Shifted(d time.Duration) *Curve {
	anchors := make([]Anchor, len(c.anchors))
	for i, a := range c.anchors {
		anchors[i] = Anchor{T: a.T.Add(d), Cum: a.Cum}
	}
	return &Curve{anchors: anchors}
}

// Scaled returns a copy of the curve with every cumulative value
// multiplied by f (f >= 0): the same launch shape at a different uptake
// level.
func (c *Curve) Scaled(f float64) *Curve {
	anchors := make([]Anchor, len(c.anchors))
	for i, a := range c.anchors {
		anchors[i] = Anchor{T: a.T, Cum: a.Cum * f}
	}
	return &Curve{anchors: anchors}
}

// Cumulative returns total downloads by t (0 before the first anchor, the
// final value after the last).
func (c *Curve) Cumulative(t time.Time) float64 {
	a := c.anchors
	if !t.After(a[0].T) {
		return a[0].Cum
	}
	if !t.Before(a[len(a)-1].T) {
		return a[len(a)-1].Cum
	}
	i := sort.Search(len(a), func(i int) bool { return a[i].T.After(t) })
	lo, hi := a[i-1], a[i]
	frac := float64(t.Sub(lo.T)) / float64(hi.T.Sub(lo.T))
	return lo.Cum + frac*(hi.Cum-lo.Cum)
}

// InstallsBetween returns new downloads in [from, to).
func (c *Curve) InstallsBetween(from, to time.Time) float64 {
	if to.Before(from) {
		return 0
	}
	return c.Cumulative(to) - c.Cumulative(from)
}

// Final returns the last anchor's cumulative value.
func (c *Curve) Final() float64 { return c.anchors[len(c.anchors)-1].Cum }

// MediaPulse is one news event driving attention.
type MediaPulse struct {
	At time.Time
	// Amplitude is the attention multiple added at the pulse peak.
	Amplitude float64
	// DecayDays is the exponential decay constant.
	DecayDays float64
}

// Attention models nation-wide media attention to the CWA; it multiplies
// website visits and install propensity in the simulator. The paper
// hypothesizes that "nation-wide news reports on outbreaks might contribute
// to growing app interest across Germany" — attention is deliberately a
// national (not regional) signal.
type Attention struct {
	Baseline float64
	Pulses   []MediaPulse
}

// DefaultAttention has the three events of the study window: the
// announcement buzz in the days before launch (the reason the paper's
// June-15 baseline is not near zero — its Figure 2 shows a 7.5x jump, not
// hundreds-fold), the release itself, and the June-23 lockdown coverage.
func DefaultAttention() Attention {
	return Attention{
		Baseline: 1,
		Pulses: []MediaPulse{
			{At: entime.StudyStart, Amplitude: 6, DecayDays: 1.5},
			{At: entime.AppRelease, Amplitude: 9, DecayDays: 1.8},
			{At: entime.OutbreakGuetersloh, Amplitude: 3.5, DecayDays: 2.2},
		},
	}
}

// At evaluates the attention signal at time t.
func (a Attention) At(t time.Time) float64 {
	v := a.Baseline
	for _, p := range a.Pulses {
		if t.Before(p.At) {
			continue
		}
		days := t.Sub(p.At).Hours() / 24
		v += p.Amplitude * math.Exp(-days/p.DecayDays)
	}
	return v
}

// Diurnal is the intra-day activity shape applied to installs and website
// visits: minimal at night, peaking in the evening. It integrates to ~1
// over 24 hours (each hourly weight averages 1).
func Diurnal(hour int) float64 {
	// Two-humped day: small morning bump, broad evening peak.
	h := float64(hour)
	morning := 0.6 * math.Exp(-((h-10)*(h-10))/18)
	evening := 1.1 * math.Exp(-((h-19)*(h-19))/22)
	night := 0.25
	v := night + morning + evening
	return v / 0.785994 // normalization constant: mean over hours 0..23
}

// DistrictWeights returns the probability of a new install landing in each
// district: population share with a mild urban skew (early adopters
// concentrate in cities), normalized to sum to 1. Order matches
// model.Districts().
func DistrictWeights(model *geo.Model) []float64 {
	ds := model.Districts()
	weights := make([]float64, len(ds))
	var sum float64
	for i, d := range ds {
		w := float64(d.Population)
		if d.Urban {
			w *= 1.15
		}
		weights[i] = w
		sum += w
	}
	for i := range weights {
		weights[i] /= sum
	}
	return weights
}

// Sampler draws district indices according to weights using the alias-free
// cumulative method; deterministic given the rng.
type Sampler struct {
	cum []float64
}

// NewSampler prepares a sampler over the given weights.
func NewSampler(weights []float64) (*Sampler, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("adoption: empty weights")
	}
	cum := make([]float64, len(weights))
	var run float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("adoption: negative weight at %d", i)
		}
		run += w
		cum[i] = run
	}
	if run <= 0 {
		return nil, fmt.Errorf("adoption: weights sum to zero")
	}
	// Normalize the cumulative boundary exactly to the total.
	for i := range cum {
		cum[i] /= run
	}
	return &Sampler{cum: cum}, nil
}

// Draw returns a weighted district index.
func (s *Sampler) Draw(rng *rand.Rand) int {
	x := rng.Float64()
	return sort.SearchFloat64s(s.cum, x)
}
