package api

import (
	"bytes"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"cwatrace/internal/ingest"
	"cwatrace/internal/obs"
)

// accessLine is the pinned access-log shape:
//
//	METHOD REQUEST-URI STATUS BYTESB DURATIONus id=REQUEST-ID
//
// Operators grep and field-split these lines; changing the format is a
// breaking change and must update this test deliberately.
var accessLine = regexp.MustCompile(`^(GET|HEAD) \S+ \d{3} \d+B \d+us id=([0-9A-Za-z_.-]{1,64})$`)

// logServer builds an instrumented live server whose access log lands
// in the returned buffer.
func logServer(t *testing.T, reg *obs.Registry, slow time.Duration) (*httptest.Server, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	s, err := New(Config{
		Live:      &fakeLive{snap: sampleSnapshot(t, 1), stats: ingest.Stats{Records: 1}},
		Log:       log.New(&buf, "", 0),
		Metrics:   reg,
		SlowQuery: slow,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, &buf
}

// TestAccessLogFormat pins the access-log line format and the request-id
// trace contract: a valid client-supplied X-Request-Id is adopted
// verbatim (and echoed on the response); an invalid or absent one is
// replaced by a minted id that still appears in both places.
func TestAccessLogFormat(t *testing.T) {
	reg := obs.NewRegistry()
	ts, buf := logServer(t, reg, 0)

	cases := []struct {
		name     string
		sentID   string
		wantSame bool
	}{
		{"supplied id adopted", "router-42.abc_DEF", true},
		{"absent id minted", "", false},
		{"invalid id replaced", "spaces are not allowed", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf.Reset()
			hdr := map[string]string{}
			if tc.sentID != "" {
				hdr[obs.RequestIDHeader] = tc.sentID
			}
			resp, body := get(t, ts.URL+"/api/v1/health", hdr)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d body %q", resp.StatusCode, body)
			}
			echoed := resp.Header.Get(obs.RequestIDHeader)
			if !obs.ValidRequestID(echoed) {
				t.Fatalf("response echoed invalid id %q", echoed)
			}
			if tc.wantSame && echoed != tc.sentID {
				t.Fatalf("valid supplied id not adopted: sent %q, echoed %q", tc.sentID, echoed)
			}
			if !tc.wantSame && echoed == tc.sentID {
				t.Fatalf("invalid id %q adopted verbatim", tc.sentID)
			}

			line := strings.TrimSuffix(buf.String(), "\n")
			m := accessLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("access log line %q does not match pinned format %s", line, accessLine)
			}
			if m[2] != echoed {
				t.Fatalf("access log id %q != response header id %q", m[2], echoed)
			}
			wantPrefix := "GET /api/v1/health 200 "
			if !strings.HasPrefix(line, wantPrefix) {
				t.Fatalf("line %q does not start with %q", line, wantPrefix)
			}
		})
	}

	// The per-endpoint counters saw every request under the closed
	// vocabulary label.
	var page bytes.Buffer
	if err := reg.WritePrometheus(&page); err != nil {
		t.Fatal(err)
	}
	exp, errs := obs.Lint(page.String())
	if len(errs) > 0 {
		t.Fatalf("exposition lint: %v", errs)
	}
	got, ok := exp.Value("api_requests_total", `{endpoint="v1_health"}`)
	if !ok || got != float64(len(cases)) {
		t.Fatalf("api_requests_total{endpoint=\"v1_health\"} = %v (found=%t), want %d", got, ok, len(cases))
	}
}

// TestSlowQueryLog drives a request over the slow-query threshold and
// requires the flagged second line (same id, "slow query:" marker).
func TestSlowQueryLog(t *testing.T) {
	ts, buf := logServer(t, nil, time.Nanosecond)
	resp, _ := get(t, ts.URL+"/api/v1/health", nil)
	id := resp.Header.Get(obs.RequestIDHeader)
	out := buf.String()
	want := "api: slow query: GET /api/v1/health 200 "
	if !strings.Contains(out, want) {
		t.Fatalf("log output %q misses slow-query line %q", out, want)
	}
	if !strings.Contains(out, "id="+id) {
		t.Fatalf("slow-query log output %q misses request id %q", out, id)
	}
	// A non-fan-out response carries no Server-Timing, so the line must
	// not grow the shards field.
	if strings.Contains(out, "shards=") {
		t.Fatalf("slow-query line for a shard-local request grew a shards field: %q", out)
	}
}

// TestSlowQueryLogShardBreakdown: when the response carries the
// router's Server-Timing per-shard breakdown, the slow-query line is
// enriched with it so one grep explains where the time went.
func TestSlowQueryLogShardBreakdown(t *testing.T) {
	var buf bytes.Buffer
	s, err := New(Config{
		Live:      &fakeLive{snap: sampleSnapshot(t, 1), stats: ingest.Stats{Records: 1}},
		Log:       log.New(&buf, "", 0),
		SlowQuery: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Handle("/debug/slowprobe", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Server-Timing", "shard0;dur=12.5, shard1;dur=3.1")
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	resp, _ := get(t, ts.URL+"/debug/slowprobe", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := buf.String()
	if !strings.Contains(out, "slow query: GET /debug/slowprobe 200 ") {
		t.Fatalf("log output %q misses slow-query line", out)
	}
	if !strings.Contains(out, ` shards="shard0;dur=12.5, shard1;dur=3.1"`) {
		t.Fatalf("slow-query line not enriched with Server-Timing: %q", out)
	}
}
