package api

import (
	"fmt"
	"sync"

	"cwatrace/internal/obs"
)

// respCache is the concurrent single-flight response cache: marshaled
// response bodies keyed by ETag (which already encodes endpoint,
// request parameters and data generation, so a key can never go stale —
// it can only fall out of use). N identical dashboard hits between data
// changes cost one serialization: the first request marshals, everyone
// else — concurrent or later — gets the cached bytes.
type respCache struct {
	mu      sync.Mutex
	max     int
	clock   uint64
	entries map[string]*cacheEntry

	// hits/misses are the effectiveness counters, set once at server
	// construction (nil = uninstrumented).
	hits   *obs.Counter
	misses *obs.Counter
}

// cacheEntry is one body being (or done being) marshaled. ready is
// closed once body/err are set; waiters block on it, which is the
// single-flight collapse.
type cacheEntry struct {
	ready   chan struct{}
	body    []byte
	err     error
	lastUse uint64
}

func newRespCache(max int) *respCache {
	if max <= 0 {
		max = 128
	}
	return &respCache{max: max, entries: make(map[string]*cacheEntry)}
}

// get returns the cached body for key, running fill exactly once per
// key across concurrent callers. Failed fills are not cached — the next
// request retries.
func (c *respCache) get(key string, fill func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	c.clock++
	if e, ok := c.entries[key]; ok {
		e.lastUse = c.clock
		c.mu.Unlock()
		c.hits.Inc()
		<-e.ready
		return e.body, e.err
	}
	e := &cacheEntry{ready: make(chan struct{}), lastUse: c.clock}
	c.entries[key] = e
	c.evictLocked()
	c.mu.Unlock()
	c.misses.Inc()

	func() {
		// A panicking fill must still release the waiters.
		defer func() {
			if r := recover(); r != nil {
				e.err = fmt.Errorf("api: building response: panic: %v", r)
			}
			close(e.ready)
		}()
		e.body, e.err = fill()
	}()

	if e.err != nil {
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return e.body, e.err
}

// evictLocked drops least-recently-used entries until the cache fits.
// Evicting an in-flight entry is safe: its waiters hold the pointer and
// still get the filled body; only future lookups miss.
func (c *respCache) evictLocked() {
	for len(c.entries) > c.max {
		var (
			oldestKey string
			oldest    uint64
			found     bool
		)
		for k, e := range c.entries {
			if !found || e.lastUse < oldest {
				oldestKey, oldest, found = k, e.lastUse, true
			}
		}
		delete(c.entries, oldestKey)
	}
}
