package api

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strings"
)

// etagFor derives the strong ETag of one response: a hash over the
// server boot nonce, the endpoint, the canonicalized request parameters
// (field selection, top, pretty, query bounds — anything that changes
// the bytes) and the data-generation token (store.Version or the
// pipeline stats hash). Equal ETags therefore certify byte-identical
// bodies within one server process; the boot nonce keeps a validator
// from one process ever matching another's.
func etagFor(boot uint64, endpoint, params string, version uint64) string {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], boot)
	h.Write(buf[:])
	h.Write([]byte(endpoint))
	h.Write([]byte{0})
	h.Write([]byte(params))
	h.Write([]byte{0})
	binary.BigEndian.PutUint64(buf[:], version)
	h.Write(buf[:])
	return fmt.Sprintf("\"%016x\"", h.Sum64())
}

// etagMatch implements the If-None-Match comparison: a comma-separated
// list of entity tags, or "*" matching anything. Weak validators (W/
// prefix) compare by opaque tag — fine for our use, where a 304 is
// always safe when the tag text matches.
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == etag {
			return true
		}
	}
	return false
}
