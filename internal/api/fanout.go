// The clustered side of the API surface: a Server built with
// Config.Fanout fronts N shard collectors instead of a local pipeline or
// store. The Fanout implementation (internal/cluster.Fleet) gathers every
// shard's full response, merges the aggregates deterministically, and
// composes the per-shard strong ETags into one cluster-wide validator;
// the handlers here translate its results into the v1 wire contract —
// including the partial-failure envelope, which is the part that keeps a
// degraded cluster honest: a response missing shards is 206 with
// Cache-Control: no-store and no ETag, never a silently wrong total.
package api

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	v1 "cwatrace/internal/api/v1"
	"cwatrace/internal/ingest"
	"cwatrace/internal/obs"
	"cwatrace/internal/store"
	"cwatrace/internal/streaming"
	"cwatrace/internal/tier"
)

// ShardError describes one shard that did not contribute to a fan-out.
type ShardError struct {
	// Shard is the shard index (position in the router's node list).
	Shard int
	// Node is the shard's address.
	Node string
	// Err is the failure, as text.
	Err string
}

// ShardTiming is one shard's contribution time to a fan-out, reported
// back to the caller in a Server-Timing response header.
type ShardTiming struct {
	// Shard is the shard index; Node its address.
	Shard int
	Node  string
	// D is how long the shard's request took (success or failure).
	D time.Duration
}

// FanResult is one gathered-and-merged data fan-out (snapshot or query).
type FanResult struct {
	// Snapshot is the merged analytics over every shard that answered;
	// nil when none did.
	Snapshot *streaming.Snapshot
	// Frames and TailIncluded aggregate the per-shard query metadata
	// (sum and logical OR); both are zero for snapshot fan-outs.
	Frames       int
	TailIncluded bool
	// Resolution and LongHorizon carry the merged long-horizon answer of
	// a day/week/auto-resolution query fan-out (sketches merge across
	// shards; see tier.Builder.MergeAnswer). Both are empty on the exact
	// hourly path and for snapshot fan-outs.
	Resolution  string
	LongHorizon *tier.Answer
	// Version is the composite validator token: a hash over the
	// per-shard strong ETags in shard order. Validated reports whether
	// it may be served as a strong validator — every shard answered and
	// every answer carried an ETag. The token and the merged body derive
	// from the same gather, so unlike the single-node path no
	// re-validation read is needed: each per-shard strong ETag pins the
	// exact upstream bytes, and the merged body is a pure function of
	// them.
	Version   uint64
	Validated bool
	// Missing lists the shards that did not answer, ascending by index.
	Missing []ShardError
	// Timings reports every shard's request duration, ascending by
	// index, for the Server-Timing response header.
	Timings []ShardTiming
}

// FanStats is a gathered /api/v1/stats fan-out: the field-wise sum of
// the reachable shards' counters.
type FanStats struct {
	Ingest ingest.Stats
	// Store is the summed store gauges, present only when every
	// reachable shard is durable.
	Store   *store.Metrics
	Missing []ShardError
}

// Fanout is the multi-upstream data source of a clustered query router
// (implemented by internal/cluster.Fleet). Implementations must be safe
// for concurrent use.
type Fanout interface {
	// NumShards is the fleet size.
	NumShards() int
	// Nonce is a boot-nonce substitute that is stable across router
	// restarts and identical for every router fronting the same node
	// list, so independent routers emit interchangeable validators.
	Nonce() uint64
	// Snapshot gathers and merges /api/v1/snapshot across the fleet.
	Snapshot(ctx context.Context) (*FanResult, error)
	// Query gathers and merges /api/v1/query?from=&to=&resolution=
	// across the fleet. res is forwarded to every shard verbatim (hour is
	// the exact path); the merged long-horizon answer rides back on
	// FanResult.LongHorizon.
	Query(ctx context.Context, from, to time.Time, res tier.Resolution) (*FanResult, error)
	// Stats gathers and sums /api/v1/stats across the fleet.
	Stats(ctx context.Context) (*FanStats, error)
	// Health probes every shard; the returned slice names the shards
	// that are unreachable or not reporting StatusOK.
	Health(ctx context.Context) []ShardError
}

// degradedOf renders the partial-failure marker, nil when nothing is
// missing. The request id rides along so a partial body can be traced
// back through the router and shard access logs.
func degradedOf(missing []ShardError, requestID string) *v1.Degraded {
	if len(missing) == 0 {
		return nil
	}
	sorted := append([]ShardError(nil), missing...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard < sorted[j].Shard })
	d := &v1.Degraded{Detail: sorted[0].Err, RequestID: requestID}
	for _, m := range sorted {
		d.MissingShards = append(d.MissingShards, m.Shard)
		d.Nodes = append(d.Nodes, m.Node)
	}
	return d
}

// setServerTiming reports the per-shard fan-out durations in a
// Server-Timing header (RFC 8941 shape: `shard0;dur=12.3, ...`, dur in
// milliseconds), so a traced client sees where a slow gather spent its
// time without any extra round trip. Headers travel outside the body,
// keeping degraded-path and byte-identity body contracts untouched.
func setServerTiming(h http.Header, timings []ShardTiming) {
	if len(timings) == 0 {
		return
	}
	parts := make([]string, len(timings))
	for i, t := range timings {
		parts[i] = fmt.Sprintf("shard%d;dur=%.1f", t.Shard, float64(t.D.Microseconds())/1e3)
	}
	h.Set("Server-Timing", strings.Join(parts, ", "))
}

// shardDetail summarizes the missing shards for an error envelope.
func shardDetail(missing []ShardError) string {
	if len(missing) == 0 {
		return ""
	}
	return fmt.Sprintf("%d shards unreachable; shard %d (%s): %s",
		len(missing), missing[0].Shard, missing[0].Node, missing[0].Err)
}

// handleFanSnapshot is /api/v1/snapshot in fan-out mode.
func (s *Server) handleFanSnapshot(w http.ResponseWriter, r *http.Request, p reqParams) {
	res, err := s.cfg.Fanout.Snapshot(r.Context())
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, v1.CodeInternal, "fan-out failed", err.Error())
		return
	}
	if res.Snapshot == nil {
		s.writeError(w, http.StatusServiceUnavailable, v1.CodeUnavailable,
			"no shard reachable", shardDetail(res.Missing))
		return
	}
	build := func() (any, error) {
		snap := v1.NewSnapshot(res.Snapshot, p.fields, p.top)
		snap.Degraded = degradedOf(res.Missing, obs.RequestID(r.Context()))
		return snap, nil
	}
	s.serveFanned(w, r, "v1/snapshot", p.key(), res, build, p.pretty)
}

// handleFanQuery is /api/v1/query in fan-out mode. from/to/resolution
// are already parsed by the caller.
func (s *Server) handleFanQuery(w http.ResponseWriter, r *http.Request, p reqParams, from, to time.Time, resolution tier.Resolution) {
	res, err := s.cfg.Fanout.Query(r.Context(), from, to, resolution)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, v1.CodeInternal, "fan-out failed", err.Error())
		return
	}
	if res.Snapshot == nil {
		s.writeError(w, http.StatusServiceUnavailable, v1.CodeUnavailable,
			"no shard reachable", shardDetail(res.Missing))
		return
	}
	key := fmt.Sprintf("from=%s&to=%s&resolution=%s&%s", stamp(from), stamp(to), resolution, p.key())
	build := func() (any, error) {
		return &v1.QueryResponse{
			From:         from,
			To:           to,
			Frames:       res.Frames,
			TailIncluded: res.TailIncluded,
			Snapshot:     v1.NewSnapshot(res.Snapshot, p.fields, p.top),
			Resolution:   res.Resolution,
			LongHorizon:  res.LongHorizon,
			Degraded:     degradedOf(res.Missing, obs.RequestID(r.Context())),
		}, nil
	}
	s.serveFanned(w, r, "v1/query", key, res, build, p.pretty)
}

// serveFanned finishes a data fan-out: the complete path mirrors
// serveCached (strong composite ETag, If-None-Match -> bodyless 304,
// single-flight body cache), the degraded path serves 206 Partial
// Content with Cache-Control: no-store and no validator — a partial
// body must never 304-revalidate, be cached, or be replayed as a
// complete one.
func (s *Server) serveFanned(w http.ResponseWriter, r *http.Request, endpoint, params string, res *FanResult, build func() (any, error), pretty bool) {
	h := w.Header()
	setServerTiming(h, res.Timings)
	if len(res.Missing) > 0 || !res.Validated {
		status := http.StatusOK
		if len(res.Missing) > 0 {
			h.Set("Cache-Control", "no-store")
			status = http.StatusPartialContent
		}
		v, err := build()
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, v1.CodeInternal, "building response failed", err.Error())
			return
		}
		s.writeJSON(w, r, status, v, pretty)
		return
	}
	h.Set("Cache-Control", "no-cache")
	etag := etagFor(s.boot, endpoint, params, res.Version)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		h.Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body, err := s.cache.get(etag, func() ([]byte, error) {
		v, err := build()
		if err != nil {
			return nil, err
		}
		return marshalBody(v, pretty)
	})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, v1.CodeInternal, "building response failed", err.Error())
		return
	}
	h.Set("ETag", etag)
	s.writeBody(w, r, http.StatusOK, body)
}

// handleFanStats is /api/v1/stats in fan-out mode: the field-wise sum
// over the reachable shards, 206-marked when some are missing.
func (s *Server) handleFanStats(w http.ResponseWriter, r *http.Request) {
	fs, err := s.cfg.Fanout.Stats(r.Context())
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, v1.CodeInternal, "fan-out failed", err.Error())
		return
	}
	if len(fs.Missing) >= s.cfg.Fanout.NumShards() {
		s.writeError(w, http.StatusServiceUnavailable, v1.CodeUnavailable,
			"no shard reachable", shardDetail(fs.Missing))
		return
	}
	resp := v1.StatsResponse{Ingest: fs.Ingest, Store: fs.Store, Degraded: degradedOf(fs.Missing, obs.RequestID(r.Context()))}
	status := http.StatusOK
	if resp.Degraded != nil {
		w.Header().Set("Cache-Control", "no-store")
		status = http.StatusPartialContent
	}
	s.writeJSON(w, r, status, resp, prettyRequested(r.URL.Query().Get("pretty")))
}

// handleFanHealth is /api/v1/health in fan-out mode. The router's own
// drain trumps everything; otherwise the fleet's reachability decides:
// all shards up is ok/200, some down is degraded/200 (the router still
// serves partial envelopes), all down is degraded/503.
func (s *Server) handleFanHealth(w http.ResponseWriter, r *http.Request) {
	resp := v1.HealthResponse{Status: v1.StatusOK}
	status := http.StatusOK
	if s.draining.Load() {
		resp.Status = v1.StatusDraining
		status = http.StatusServiceUnavailable
	} else if missing := s.cfg.Fanout.Health(r.Context()); len(missing) > 0 {
		resp.Status = v1.StatusDegraded
		resp.Degraded = degradedOf(missing, obs.RequestID(r.Context()))
		if len(missing) >= s.cfg.Fanout.NumShards() {
			status = http.StatusServiceUnavailable
		}
	}
	s.writeJSON(w, r, status, resp, prettyRequested(r.URL.Query().Get("pretty")))
}
