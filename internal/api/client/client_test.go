package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"cwatrace/internal/api"
	v1 "cwatrace/internal/api/v1"
	"cwatrace/internal/core"
	"cwatrace/internal/entime"
	"cwatrace/internal/ingest"
	"cwatrace/internal/netflow"
	"cwatrace/internal/store"
	"cwatrace/internal/streaming"
)

type fakeLive struct {
	snap  *streaming.Snapshot
	stats ingest.Stats
}

func (f *fakeLive) Snapshot() *streaming.Snapshot { return f.snap }
func (f *fakeLive) Stats() ingest.Stats           { return f.stats }

func keptRecord(h, client int, bytes uint64) netflow.Record {
	f := core.DefaultFilter()
	at := entime.StudyStart.Add(time.Duration(h) * time.Hour)
	return netflow.Record{
		Key: netflow.Key{
			Src:     f.ServerPrefixes[0].Addr(),
			Dst:     netip.AddrFrom4([4]byte{100, 64, byte(client >> 8), byte(client)}),
			SrcPort: netflow.PortHTTPS,
			DstPort: uint16(50000 + client%1000),
			Proto:   netflow.ProtoTCP,
		},
		Packets:  5,
		Bytes:    bytes,
		First:    at,
		Last:     at.Add(time.Second),
		Exporter: "ISP/BE-000",
	}
}

// testServer is a store-backed API server plus a counter of full (200)
// snapshot/query responses, so tests can see the client's 304 cache
// working.
func testServer(t *testing.T) (*store.Store, *httptest.Server, *atomic.Int64) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{Analytics: streaming.Config{WindowHours: 48, TopK: 5}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for h := 0; h < 6; h++ {
		if err := st.Append([]netflow.Record{keptRecord(h, (h%3)*256+h, uint64(200+h))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	srv, err := api.New(api.Config{History: st})
	if err != nil {
		t.Fatal(err)
	}
	var full atomic.Int64
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, r)
		if rec.Code == http.StatusOK {
			full.Add(1)
		}
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		w.Write(rec.Body.Bytes())
	})
	ts := httptest.NewServer(counting)
	t.Cleanup(ts.Close)
	return st, ts, &full
}

func TestSnapshotAndQueryTyped(t *testing.T) {
	_, ts, _ := testServer(t)
	c, err := New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	snap, err := c.Snapshot(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Hours) == 0 || snap.Census == nil || snap.Census.Kept != 6 {
		t.Fatalf("snapshot: %+v", snap)
	}

	q, err := c.Query(ctx, entime.StudyStart, entime.StudyStart.Add(3*time.Hour), nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Frames != 1 || len(q.Snapshot.Hours) != 3 {
		t.Fatalf("query: frames=%d hours=%d", q.Frames, len(q.Snapshot.Hours))
	}

	// Field selection travels through the client.
	sub, err := c.Snapshot(ctx, &ReqOpts{Fields: v1.FieldHourly})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sub.Hours, snap.Hours) || sub.Census != nil {
		t.Fatalf("fields=hourly: %+v", sub)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Store == nil || st.Store.Frames != 1 {
		t.Fatalf("stats: %+v", st)
	}

	h, err := c.Health(ctx)
	if err != nil || h.Status != v1.StatusOK {
		t.Fatalf("health: %+v %v", h, err)
	}
}

// TestETagCacheServes304 pins the client-side conditional GET: the
// second identical call revalidates, the server answers 304, and the
// client returns the locally cached body.
func TestETagCacheServes304(t *testing.T) {
	st, ts, full := testServer(t)
	c, err := New(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	from, to := entime.StudyStart, entime.StudyStart.Add(4*time.Hour)
	first, err := c.Query(ctx, from, to, nil)
	if err != nil {
		t.Fatal(err)
	}
	fullAfterFirst := full.Load()
	second, err := c.Query(ctx, from, to, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Load() != fullAfterFirst {
		t.Fatalf("second identical query was served a full 200 (%d -> %d)", fullAfterFirst, full.Load())
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached decode differs from the original")
	}

	// A checkpoint invalidates: the next call is a full response again
	// with fresh content.
	if err := st.Append([]netflow.Record{keptRecord(1, 900, 100)}); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	third, err := c.Query(ctx, from, to, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Load() == fullAfterFirst {
		t.Fatal("post-checkpoint query still served from cache")
	}
	if reflect.DeepEqual(first, third) {
		t.Fatal("post-checkpoint query returned stale data")
	}
}

func TestRetriesTransientFailures(t *testing.T) {
	_, upstream, _ := testServer(t)
	var hits atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "temporarily hosed", http.StatusBadGateway)
			return
		}
		resp, err := http.Get(upstream.URL + r.URL.RequestURI())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		if _, err := w.Write(readAll(t, resp)); err != nil {
			t.Error(err)
		}
	}))
	defer flaky.Close()

	c, err := New(flaky.URL, &Options{Retries: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot(context.Background(), nil)
	if err != nil {
		t.Fatalf("after retries: %v", err)
	}
	if len(snap.Hours) == 0 {
		t.Fatal("empty snapshot after retry")
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d hits, want 3", hits.Load())
	}
}

func TestStructuredErrorsSurface(t *testing.T) {
	// A live-only server has no /api/v1/query.
	live := &fakeLive{snap: streaming.New(streaming.Config{}).Snapshot()}
	srv, err := api.New(api.Config{Live: live})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c, err := New(ts.URL, &Options{Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Query(context.Background(), time.Time{}, time.Time{}, nil)
	var apiErr *v1.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *v1.Error, got %T: %v", err, err)
	}
	if apiErr.Code != v1.CodeNotFound || apiErr.Status != http.StatusNotFound {
		t.Fatalf("error: %+v", apiErr)
	}

	// 4xx errors are not retried.
	if _, err := c.QueryBounds(context.Background(), "bogus", "", nil); err == nil {
		t.Fatal("bad bound accepted")
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	b := make([]byte, 0, 1024)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b = append(b, buf[:n]...)
		if err != nil {
			return b
		}
	}
}
