// Package client is the typed Go client for the collectord /api/v1
// surface — the one way every remote consumer (cwanalyze -addr, the
// apiload generator, dashboards) reaches the data. It retries transient
// failures with backoff, surfaces the server's structured errors as
// *v1.Error values, and keeps a small ETag-aware local cache: repeated
// reads revalidate with If-None-Match and decode the locally cached
// body on 304, so an unchanged dashboard poll costs headers, not
// payload.
package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	v1 "cwatrace/internal/api/v1"
	"cwatrace/internal/obs"
	"cwatrace/internal/store"
)

// Options tune a Client; the zero value is usable.
type Options struct {
	// HTTPClient overrides the transport (default: a dedicated client
	// with sane timeouts).
	HTTPClient *http.Client
	// Retries is how many times a transient failure (network error, 5xx)
	// is retried after the first attempt (0 = the default of 3, negative
	// = never retry).
	Retries int
	// Backoff is the base delay between retries, doubled each attempt
	// (default 100ms).
	Backoff time.Duration
}

// cacheLimit bounds the per-URL ETag cache.
const cacheLimit = 256

// Client talks to one collectord API server. It is safe for concurrent
// use.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration

	mu    sync.Mutex
	cache map[string]*cachedResp
}

// cachedResp is one validated response body.
type cachedResp struct {
	etag string
	body []byte
}

// New builds a client for addr, which may be a bare host:port or a full
// http(s) URL.
func New(addr string, opts *Options) (*Client, error) {
	if addr == "" {
		return nil, fmt.Errorf("client: empty address")
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil || u.Host == "" {
		return nil, fmt.Errorf("client: bad address %q", addr)
	}
	c := &Client{
		base:    strings.TrimRight(u.String(), "/"),
		hc:      &http.Client{Timeout: 60 * time.Second},
		retries: 3,
		backoff: 100 * time.Millisecond,
		cache:   make(map[string]*cachedResp),
	}
	if opts != nil {
		if opts.HTTPClient != nil {
			c.hc = opts.HTTPClient
		}
		if opts.Retries > 0 {
			c.retries = opts.Retries
		} else if opts.Retries < 0 {
			c.retries = 0
		}
		if opts.Backoff > 0 {
			c.backoff = opts.Backoff
		}
	}
	return c, nil
}

// ReqOpts select the response shape of the cacheable endpoints.
type ReqOpts struct {
	// Fields selects snapshot sections (zero = everything).
	Fields v1.FieldSet
	// Top truncates the ranked lists to the busiest N entries (0 = all).
	Top int
	// Resolution selects the query answer resolution (hour, day, week,
	// auto; empty = the exact hourly default). Query endpoints only.
	Resolution string
}

// values renders the options as query parameters.
func (o *ReqOpts) values() url.Values {
	q := url.Values{}
	if o == nil {
		return q
	}
	if o.Fields != 0 && o.Fields != v1.AllFields {
		q.Set("fields", o.Fields.String())
	}
	if o.Top > 0 {
		q.Set("top", strconv.Itoa(o.Top))
	}
	if o.Resolution != "" {
		q.Set("resolution", o.Resolution)
	}
	return q
}

// Snapshot fetches /api/v1/snapshot.
func (c *Client) Snapshot(ctx context.Context, opts *ReqOpts) (*v1.Snapshot, error) {
	out, _, err := c.SnapshotTag(ctx, opts)
	return out, err
}

// SnapshotTag is Snapshot plus the response's strong ETag. The cluster
// query router composes the per-shard tags into its cluster-wide
// validator, so it needs them surfaced, not just cached. The tag is
// empty when the server sent none (a degraded upstream, or validator
// churn).
func (c *Client) SnapshotTag(ctx context.Context, opts *ReqOpts) (*v1.Snapshot, string, error) {
	var out v1.Snapshot
	etag, err := c.getJSON(ctx, "/api/v1/snapshot", opts.values(), true, &out)
	if err != nil {
		return nil, "", err
	}
	return &out, etag, nil
}

// Query fetches /api/v1/query for [from, to); zero bounds are open
// ends.
func (c *Client) Query(ctx context.Context, from, to time.Time, opts *ReqOpts) (*v1.QueryResponse, error) {
	out, _, err := c.QueryTag(ctx, from, to, opts)
	return out, err
}

// QueryTag is Query plus the response's strong ETag (see SnapshotTag).
func (c *Client) QueryTag(ctx context.Context, from, to time.Time, opts *ReqOpts) (*v1.QueryResponse, string, error) {
	q := opts.values()
	// RFC3339Nano keeps sub-second bounds lossless; store.ParseTime on
	// the server accepts the fractional form.
	if !from.IsZero() {
		q.Set("from", from.Format(time.RFC3339Nano))
	}
	if !to.IsZero() {
		q.Set("to", to.Format(time.RFC3339Nano))
	}
	var out v1.QueryResponse
	etag, err := c.getJSON(ctx, "/api/v1/query", q, true, &out)
	if err != nil {
		return nil, "", err
	}
	return &out, etag, nil
}

// QueryBounds is Query with string bounds in the forms every store
// consumer accepts (RFC 3339 or unix seconds, empty = open), so CLI
// flags pass through unparsed.
func (c *Client) QueryBounds(ctx context.Context, from, to string, opts *ReqOpts) (*v1.QueryResponse, error) {
	f, err := store.ParseTime(from)
	if err != nil {
		return nil, fmt.Errorf("client: from: %w", err)
	}
	t, err := store.ParseTime(to)
	if err != nil {
		return nil, fmt.Errorf("client: to: %w", err)
	}
	return c.Query(ctx, f, t, opts)
}

// Stats fetches /api/v1/stats (never cached: it changes every packet).
func (c *Client) Stats(ctx context.Context) (*v1.StatsResponse, error) {
	var out v1.StatsResponse
	if _, err := c.getJSON(ctx, "/api/v1/stats", nil, false, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health probes /api/v1/health once (no retries — a draining 503 is an
// answer, not a failure). The response is returned for both 200 and
// 503 bodies that parse; anything else is an error.
func (c *Client) Health(ctx context.Context) (*v1.HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1/health", nil)
	if err != nil {
		return nil, err
	}
	setRequestID(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	var h v1.HealthResponse
	if jerr := json.Unmarshal(body, &h); jerr == nil && h.Status != "" {
		return &h, nil
	}
	return nil, apiError(resp.StatusCode, body)
}

// getJSON is the shared GET path: retries, the ETag cache, and the
// error-envelope decoding. It returns the response's ETag ("" when the
// server sent none — including every degraded partial response).
func (c *Client) getJSON(ctx context.Context, path string, q url.Values, cacheable bool, out any) (string, error) {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			delay := c.backoff << (attempt - 1)
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(delay):
			}
		}
		body, etag, err := c.try(ctx, u, cacheable)
		if err == nil {
			return etag, json.Unmarshal(body, out)
		}
		lastErr = err
		if !retryable(err) {
			break
		}
	}
	return "", lastErr
}

// setRequestID forwards the trace context riding the request's
// context: the request id (so one X-Request-Id appears in the edge's
// and every shard's access log) and the current span id as
// X-Trace-Parent (so the shard's root span nests under the router's
// fan-out span in the merged cross-process tree).
func setRequestID(req *http.Request) {
	if id := obs.RequestID(req.Context()); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	if sid := obs.ContextSpanID(req.Context()); sid != 0 {
		req.Header.Set(obs.TraceParentHeader, obs.FormatSpanID(sid))
	}
}

// try runs one conditional GET against url.
func (c *Client) try(ctx context.Context, url string, cacheable bool) ([]byte, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, "", err
	}
	setRequestID(req)
	var prior *cachedResp
	if cacheable {
		c.mu.Lock()
		prior = c.cache[url]
		c.mu.Unlock()
		if prior != nil {
			req.Header.Set("If-None-Match", prior.etag)
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, "", &transportError{err}
	}
	defer resp.Body.Close()

	if resp.StatusCode == http.StatusNotModified {
		if prior == nil {
			// A 304 we never asked for; treat as transient.
			return nil, "", &transportError{fmt.Errorf("unsolicited 304 from %s", url)}
		}
		return prior.body, prior.etag, nil
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", &transportError{err}
	}
	// 206 Partial Content is a clustered router's documented degraded
	// envelope: a valid typed body (with a Degraded marker), not an
	// error. It never carries an ETag and must not enter the cache.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
		return nil, "", apiError(resp.StatusCode, body)
	}
	etag := resp.Header.Get("ETag")
	if cacheable && resp.StatusCode == http.StatusOK && etag != "" {
		c.mu.Lock()
		if len(c.cache) >= cacheLimit {
			for k := range c.cache {
				delete(c.cache, k)
				break
			}
		}
		c.cache[url] = &cachedResp{etag: etag, body: body}
		c.mu.Unlock()
	}
	return body, etag, nil
}

// transportError marks network-level failures (always retryable).
type transportError struct{ err error }

func (e *transportError) Error() string { return "client: " + e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// apiError converts a non-200 response into a *v1.Error, synthesizing
// an envelope for bodies that carry none (legacy text errors, proxies).
func apiError(status int, body []byte) error {
	var env v1.ErrorResponse
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil {
		env.Error.Status = status
		return env.Error
	}
	return &v1.Error{
		Code:    http.StatusText(status),
		Message: strings.TrimSpace(string(body)),
		Status:  status,
	}
}

// retryable reports whether another attempt can help: transport
// failures and server-side 5xx, never client-side 4xx.
func retryable(err error) bool {
	if _, ok := err.(*transportError); ok {
		return true
	}
	if apiErr, ok := err.(*v1.Error); ok {
		return apiErr.Status >= 500
	}
	return false
}
