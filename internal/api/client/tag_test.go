package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	v1 "cwatrace/internal/api/v1"
)

// TestSnapshotTagSurfacesETag pins the tag-surfacing contract the
// cluster router composes its validator from: the first fetch returns
// the server's ETag, and a 304-revalidated fetch returns the SAME tag
// with the cached body — the tag identifies bytes, not transfers.
func TestSnapshotTagSurfacesETag(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if r.Header.Get("If-None-Match") == `"abc"` {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("ETag", `"abc"`)
		json.NewEncoder(w).Encode(v1.Snapshot{WindowHours: 4})
	}))
	defer srv.Close()

	c, err := New(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, etag, err := c.SnapshotTag(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if etag != `"abc"` || snap.WindowHours != 4 {
		t.Fatalf("first fetch: etag %q, window %d", etag, snap.WindowHours)
	}
	snap, etag, err = c.SnapshotTag(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if etag != `"abc"` || snap.WindowHours != 4 {
		t.Fatalf("revalidated fetch: etag %q, window %d", etag, snap.WindowHours)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2", hits.Load())
	}
}

// TestDegraded206DecodesWithoutCaching pins the partial-response
// handling: a 206 body decodes as a success (the typed degraded
// envelope, not an error), carries no tag, and never enters the ETag
// cache — a later 200 must not be answered from partial bytes.
func TestDegraded206DecodesWithoutCaching(t *testing.T) {
	degraded := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("If-None-Match") != "" {
			t.Errorf("client revalidated against a partial response")
		}
		if degraded {
			w.Header().Set("Cache-Control", "no-store")
			w.WriteHeader(http.StatusPartialContent)
			json.NewEncoder(w).Encode(v1.Snapshot{
				WindowHours: 4,
				Degraded:    &v1.Degraded{MissingShards: []int{1}},
			})
			return
		}
		w.Header().Set("ETag", `"full"`)
		json.NewEncoder(w).Encode(v1.Snapshot{WindowHours: 8})
	}))
	defer srv.Close()

	c, err := New(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, etag, err := c.SnapshotTag(context.Background(), nil)
	if err != nil {
		t.Fatalf("206 should decode, not error: %v", err)
	}
	if etag != "" || snap.Degraded == nil || len(snap.Degraded.MissingShards) != 1 {
		t.Fatalf("degraded fetch: etag %q, marker %+v", etag, snap.Degraded)
	}
	degraded = false
	snap, etag, err = c.SnapshotTag(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if etag != `"full"` || snap.WindowHours != 8 || snap.Degraded != nil {
		t.Fatalf("recovered fetch: etag %q, %+v", etag, snap)
	}
}
