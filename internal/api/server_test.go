package api

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	v1 "cwatrace/internal/api/v1"
	"cwatrace/internal/core"
	"cwatrace/internal/entime"
	"cwatrace/internal/ingest"
	"cwatrace/internal/netflow"
	"cwatrace/internal/store"
	"cwatrace/internal/streaming"
)

func testCfg() streaming.Config {
	return streaming.Config{WindowHours: 48, TopK: 5}
}

// keptRecord fabricates a record the paper's filter keeps, landing in
// hour h of the study window.
func keptRecord(h, client int, bytes uint64) netflow.Record {
	f := core.DefaultFilter()
	at := entime.StudyStart.Add(time.Duration(h) * time.Hour)
	return netflow.Record{
		Key: netflow.Key{
			Src:     f.ServerPrefixes[0].Addr(),
			Dst:     netip.AddrFrom4([4]byte{100, 64, byte(client >> 8), byte(client)}),
			SrcPort: netflow.PortHTTPS,
			DstPort: uint16(50000 + client%1000),
			Proto:   netflow.ProtoTCP,
		},
		Packets:  5,
		Bytes:    bytes,
		First:    at,
		Last:     at.Add(time.Second),
		Exporter: "ISP/BE-000",
	}
}

// fakeLive is a Live source with fixed state; delay simulates a slow
// snapshot merge for the timeout tests.
type fakeLive struct {
	snap  *streaming.Snapshot
	stats ingest.Stats
	delay time.Duration
}

func (f *fakeLive) Snapshot() *streaming.Snapshot {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return f.snap
}
func (f *fakeLive) Stats() ingest.Stats { return f.stats }

// liveServer builds a server over a fixed snapshot.
func liveServer(t *testing.T, snap *streaming.Snapshot) *httptest.Server {
	t.Helper()
	s, err := New(Config{Live: &fakeLive{snap: snap, stats: ingest.Stats{Records: 42, Processed: 42}}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// storeServer builds a durable store with three checkpointed hours 0-3
// plus a live tail at hours 30-31, and a server over it.
func storeServer(t *testing.T) (*store.Store, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{Analytics: testCfg()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for h := 0; h < 4; h++ {
		if err := st.Append([]netflow.Record{keptRecord(h, h, uint64(100+h))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, h := range []int{30, 31} {
		if err := st.Append([]netflow.Record{keptRecord(h, h, 100)}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(Config{History: st})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return st, ts
}

// sampleSnapshot merges n shards fed round-robin, so worker-count
// invariance is testable at the HTTP layer.
func sampleSnapshot(t *testing.T, shards int) *streaming.Snapshot {
	t.Helper()
	cfg := testCfg()
	lanes := make([]*streaming.Analytics, shards)
	for i := range lanes {
		lanes[i] = streaming.New(cfg)
	}
	for i := 0; i < 400; i++ {
		// client spreads over 7 distinct /24s so the leaderboard has rows.
		r := keptRecord(i%40, (i%7)*256+i, uint64(400+i))
		lanes[i%shards].Ingest([]netflow.Record{r})
		dropped := r
		dropped.SrcPort = 80
		lanes[i%shards].Ingest([]netflow.Record{dropped})
	}
	return streaming.Collect(cfg, lanes)
}

// get runs one GET with optional extra headers and returns the response
// plus its full body.
func get(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	// Disable the transport's transparent gzip so tests see the wire
	// encoding as a CDN would.
	tr := &http.Transport{DisableCompression: true}
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// decodeError requires the structured envelope and returns it.
func decodeError(t *testing.T, body []byte) *v1.Error {
	t.Helper()
	var env v1.ErrorResponse
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
		t.Fatalf("body is not an error envelope: %v %q", err, body)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope misses code or message: %+v", env.Error)
	}
	return env.Error
}

// TestErrorEnvelopeEveryFailurePath walks each v1 failure mode and
// requires the {code, message, detail} envelope shape.
func TestErrorEnvelopeEveryFailurePath(t *testing.T) {
	ts := liveServer(t, sampleSnapshot(t, 1))
	cases := []struct {
		name   string
		method string
		path   string
		status int
		code   string
	}{
		{"bad fields", http.MethodGet, "/api/v1/snapshot?fields=bogus", http.StatusBadRequest, v1.CodeBadRequest},
		{"bad top", http.MethodGet, "/api/v1/snapshot?top=banana", http.StatusBadRequest, v1.CodeBadRequest},
		{"negative top", http.MethodGet, "/api/v1/snapshot?top=-1", http.StatusBadRequest, v1.CodeBadRequest},
		{"query without store", http.MethodGet, "/api/v1/query", http.StatusNotFound, v1.CodeNotFound},
		{"unknown endpoint", http.MethodGet, "/api/v1/nope", http.StatusNotFound, v1.CodeNotFound},
		{"post", http.MethodPost, "/api/v1/snapshot", http.StatusMethodNotAllowed, v1.CodeMethodNotAllowed},
		{"delete health", http.MethodDelete, "/api/v1/health", http.StatusMethodNotAllowed, v1.CodeMethodNotAllowed},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		if e := decodeError(t, body); e.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, e.Code, tc.code)
		}
		if tc.status == http.StatusMethodNotAllowed && resp.Header.Get("Allow") != "GET, HEAD" {
			t.Errorf("%s: Allow header %q", tc.name, resp.Header.Get("Allow"))
		}
	}

	// Bad time bounds on a store-backed server.
	_, sts := storeServer(t)
	resp, body := get(t, sts.URL+"/api/v1/query?from=notatime", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from: status %d", resp.StatusCode)
	}
	if e := decodeError(t, body); e.Code != v1.CodeBadRequest || !strings.Contains(e.Detail, "RFC 3339") {
		t.Fatalf("bad from envelope: %+v", e)
	}
}

// TestETagRoundTrip pins the conditional-GET contract on both cacheable
// endpoints: a second conditional GET returns 304 with zero body bytes;
// a frames-only query keeps its ETag across out-of-range live appends
// and loses it at the next checkpoint.
func TestETagRoundTrip(t *testing.T) {
	st, ts := storeServer(t)

	origin := entime.StudyStart
	queryURL := fmt.Sprintf("%s/api/v1/query?from=%d&to=%d",
		ts.URL, origin.Unix(), origin.Add(4*time.Hour).Unix())

	resp, body := get(t, queryURL, nil)
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("first query: %d %q", resp.StatusCode, body)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("query carries no ETag")
	}

	resp, body = get(t, queryURL, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional query: status %d, want 304", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body))
	}

	// Live ingest outside the queried range does not invalidate.
	if err := st.Append([]netflow.Record{keptRecord(31, 9, 100)}); err != nil {
		t.Fatal(err)
	}
	if resp, _ = get(t, queryURL, map[string]string{"If-None-Match": etag}); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("out-of-range append broke the ETag: status %d", resp.StatusCode)
	}

	// The next checkpoint advances the store generation: full 200 again,
	// new ETag.
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	resp, body = get(t, queryURL, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("post-checkpoint conditional query: %d", resp.StatusCode)
	}
	if resp.Header.Get("ETag") == etag {
		t.Fatal("checkpoint did not change the ETag")
	}

	// /api/v1/snapshot invalidates on any ingest.
	resp, _ = get(t, ts.URL+"/api/v1/snapshot", nil)
	snapTag := resp.Header.Get("ETag")
	if resp, _ = get(t, ts.URL+"/api/v1/snapshot", map[string]string{"If-None-Match": snapTag}); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("snapshot conditional GET: status %d", resp.StatusCode)
	}
	if err := st.Append([]netflow.Record{keptRecord(31, 10, 100)}); err != nil {
		t.Fatal(err)
	}
	resp, _ = get(t, ts.URL+"/api/v1/snapshot", map[string]string{"If-None-Match": snapTag})
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") == snapTag {
		t.Fatalf("ingest did not invalidate the snapshot ETag: %d %s", resp.StatusCode, resp.Header.Get("ETag"))
	}

	// Different params, different ETags.
	resp, _ = get(t, ts.URL+"/api/v1/snapshot?fields=hourly", nil)
	if resp.Header.Get("ETag") == snapTag {
		t.Fatal("field selection shares the full snapshot's ETag")
	}
}

// TestFieldSelectionSubsets requires each ?fields= subset to equal the
// matching slice of the full snapshot response.
func TestFieldSelectionSubsets(t *testing.T) {
	ts := liveServer(t, sampleSnapshot(t, 2))
	_, fullBody := get(t, ts.URL+"/api/v1/snapshot", nil)
	var full map[string]json.RawMessage
	if err := json.Unmarshal(fullBody, &full); err != nil {
		t.Fatal(err)
	}
	sections := map[string][]string{
		"hourly":    {"hours", "series_start"},
		"filters":   {"census"},
		"prefixes":  {"top_prefixes"},
		"districts": {},
		"spikes":    {},
	}
	allKeys := map[string]bool{"hours": true, "census": true, "top_prefixes": true, "spikes": true, "districts": true}
	for field, keys := range sections {
		_, body := get(t, ts.URL+"/api/v1/snapshot?fields="+field, nil)
		var sub map[string]json.RawMessage
		if err := json.Unmarshal(body, &sub); err != nil {
			t.Fatal(err)
		}
		for _, key := range keys {
			if string(sub[key]) != string(full[key]) {
				t.Errorf("fields=%s: %q differs from the full snapshot's", field, key)
			}
		}
		// No unselected aggregate section leaks in.
		for key := range allKeys {
			selected := false
			for _, k := range keys {
				if k == key {
					selected = true
				}
			}
			if _, ok := sub[key]; ok && !selected {
				t.Errorf("fields=%s leaked %q", field, key)
			}
		}
	}

	// top=N truncates the leaderboard to the leading ranked entries.
	var fullSnap v1.Snapshot
	if err := json.Unmarshal(fullBody, &fullSnap); err != nil {
		t.Fatal(err)
	}
	if len(fullSnap.TopPrefixes) < 3 {
		t.Fatalf("sample has %d prefixes, want ≥3", len(fullSnap.TopPrefixes))
	}
	_, topBody := get(t, ts.URL+"/api/v1/snapshot?top=2", nil)
	var topSnap v1.Snapshot
	if err := json.Unmarshal(topBody, &topSnap); err != nil {
		t.Fatal(err)
	}
	if len(topSnap.TopPrefixes) != 2 ||
		topSnap.TopPrefixes[0] != fullSnap.TopPrefixes[0] ||
		topSnap.TopPrefixes[1] != fullSnap.TopPrefixes[1] {
		t.Fatalf("top=2 leaderboard %+v is not the leading slice of %+v", topSnap.TopPrefixes, fullSnap.TopPrefixes)
	}
	if len(topBody) >= len(fullBody) {
		t.Fatal("top truncation did not shrink the payload")
	}
}

// TestWorkerCountInvariance requires byte-identical API responses from
// 1-shard and 4-shard analytics over the same records.
func TestWorkerCountInvariance(t *testing.T) {
	one := liveServer(t, sampleSnapshot(t, 1))
	four := liveServer(t, sampleSnapshot(t, 4))
	for _, path := range []string{
		"/api/v1/snapshot",
		"/api/v1/snapshot?fields=hourly,prefixes&top=3",
		"/api/v1/snapshot?pretty=1",
		"/snapshot", // legacy alias
	} {
		_, a := get(t, one.URL+path, nil)
		_, b := get(t, four.URL+path, nil)
		if string(a) != string(b) {
			t.Errorf("%s differs between 1 and 4 workers:\n %.200s\n %.200s", path, a, b)
		}
	}
}

// TestCompactDefaultPrettyOptIn pins the satellite fix: compact JSON by
// default, indentation only under ?pretty=1, and the pretty body is
// strictly larger.
func TestCompactDefaultPrettyOptIn(t *testing.T) {
	ts := liveServer(t, sampleSnapshot(t, 2))
	_, compact := get(t, ts.URL+"/api/v1/snapshot", nil)
	if strings.Contains(string(compact), "\n  \"") {
		t.Fatal("default response is indented")
	}
	if !strings.HasSuffix(string(compact), "\n") {
		t.Fatal("body is not newline-terminated")
	}
	_, pretty := get(t, ts.URL+"/api/v1/snapshot?pretty=1", nil)
	if !strings.Contains(string(pretty), "\n  \"") {
		t.Fatal("?pretty=1 response is not indented")
	}
	if len(pretty) <= len(compact) {
		t.Fatal("pretty body is not larger than compact")
	}
	var a, b v1.Snapshot
	if err := json.Unmarshal(compact, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(pretty, &b); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatal("pretty and compact decode differently")
	}
}

// TestEpochBoundIsNotOpenBound pins the stamp() fix: ?to=0 (the unix
// epoch, a valid bound that excludes everything) must not share a cache
// key — and therefore an ETag or a cached body — with an open-ended
// query.
func TestEpochBoundIsNotOpenBound(t *testing.T) {
	_, ts := storeServer(t)
	respOpen, bodyOpen := get(t, ts.URL+"/api/v1/query", nil)
	respEpoch, bodyEpoch := get(t, ts.URL+"/api/v1/query?to=0", nil)
	if respOpen.Header.Get("ETag") == respEpoch.Header.Get("ETag") {
		t.Fatal("open and epoch bounds share an ETag")
	}
	if string(bodyOpen) == string(bodyEpoch) {
		t.Fatal("open and epoch bounds share a body")
	}
	var epoch v1.QueryResponse
	if err := json.Unmarshal(bodyEpoch, &epoch); err != nil {
		t.Fatal(err)
	}
	if len(epoch.Snapshot.Hours) != 0 {
		t.Fatalf("to=epoch returned %d hours, want none", len(epoch.Snapshot.Hours))
	}
	// A validator from one must not 304 the other.
	resp, _ := get(t, ts.URL+"/api/v1/query?to=0",
		map[string]string{"If-None-Match": respOpen.Header.Get("ETag")})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open-bound ETag validated the epoch-bound query: %d", resp.StatusCode)
	}
}

func TestGzipNegotiation(t *testing.T) {
	ts := liveServer(t, sampleSnapshot(t, 2))
	_, plain := get(t, ts.URL+"/api/v1/snapshot", nil)
	if len(plain) < gzipMinBytes {
		t.Fatalf("sample body too small (%dB) to exercise gzip", len(plain))
	}
	resp, compressed := get(t, ts.URL+"/api/v1/snapshot", map[string]string{"Accept-Encoding": "gzip"})
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("Content-Encoding %q, want gzip", resp.Header.Get("Content-Encoding"))
	}
	if resp.Header.Get("Vary") != "Accept-Encoding" {
		t.Fatalf("Vary %q", resp.Header.Get("Vary"))
	}
	gr, err := gzip.NewReader(strings.NewReader(string(compressed)))
	if err != nil {
		t.Fatal(err)
	}
	inflated, err := io.ReadAll(gr)
	if err != nil {
		t.Fatal(err)
	}
	if string(inflated) != string(plain) {
		t.Fatal("gzip body differs from identity body")
	}
	if len(compressed) >= len(plain) {
		t.Fatal("gzip did not shrink the body")
	}

	// An explicit q=0 refuses gzip (RFC 9110); identity bytes come back.
	resp, refused := get(t, ts.URL+"/api/v1/snapshot", map[string]string{"Accept-Encoding": "gzip;q=0, identity"})
	if resp.Header.Get("Content-Encoding") == "gzip" {
		t.Fatal("gzip;q=0 still got a gzip body")
	}
	if string(refused) != string(plain) {
		t.Fatal("identity fallback differs from the plain body")
	}
}

// TestTimeoutEnvelope pins the middleware contract on the slowest
// failure path: a timed-out request still carries the structured JSON
// envelope with Content-Type application/json (http.TimeoutHandler
// writes the body itself, so the type must be pre-declared).
func TestTimeoutEnvelope(t *testing.T) {
	s, err := New(Config{
		Live:    &fakeLive{snap: sampleSnapshot(t, 1), delay: 2 * time.Second},
		Timeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, body := get(t, ts.URL+"/api/v1/snapshot", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timeout status %d, want 503", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("timeout Content-Type %q, want application/json", ct)
	}
	if e := decodeError(t, body); e.Code != v1.CodeTimeout {
		t.Fatalf("timeout code %q, want %q", e.Code, v1.CodeTimeout)
	}
}

func TestHealthDraining(t *testing.T) {
	live := &fakeLive{snap: sampleSnapshot(t, 1)}
	s, err := New(Config{Live: live})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, body := get(t, ts.URL+"/api/v1/health", nil)
	var h v1.HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != v1.StatusOK {
		t.Fatalf("healthy: %d %+v", resp.StatusCode, h)
	}
	resp, lbody := get(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK || string(lbody) != "ok\n" {
		t.Fatalf("legacy healthy: %d %q", resp.StatusCode, lbody)
	}

	s.SetDraining(true)
	resp, body = get(t, ts.URL+"/api/v1/health", nil)
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != v1.StatusDraining {
		t.Fatalf("draining: %d %+v", resp.StatusCode, h)
	}
	resp, lbody = get(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || string(lbody) != "draining\n" {
		t.Fatalf("legacy draining: %d %q", resp.StatusCode, lbody)
	}
}

// TestLegacyAliases pins the deprecated endpoints: the historical
// response shapes, the Deprecation/Link headers, and the carried-over
// hygiene fixes (405, compact by default).
func TestLegacyAliases(t *testing.T) {
	st, ts := storeServer(t)
	_ = st

	resp, body := get(t, ts.URL+"/snapshot", nil)
	if resp.Header.Get("Deprecation") != "true" || !strings.Contains(resp.Header.Get("Link"), "/api/v1/snapshot") {
		t.Fatalf("legacy /snapshot lacks deprecation headers: %+v", resp.Header)
	}
	var legacy struct {
		Stats    *ingest.Stats       `json:"stats"`
		Snapshot *streaming.Snapshot `json:"snapshot"`
	}
	if err := json.Unmarshal(body, &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.Stats == nil || legacy.Snapshot == nil {
		t.Fatalf("legacy shape lost a member: %q", body)
	}
	if strings.Contains(string(body), "\n  \"") {
		t.Fatal("legacy default is still indented")
	}
	if _, pbody := get(t, ts.URL+"/snapshot?pretty=1", nil); !strings.Contains(string(pbody), "\n  \"") {
		t.Fatal("legacy ?pretty=1 is not indented")
	}

	// Legacy /query serves the store.QueryResult shape with an ETag.
	resp, body = get(t, ts.URL+"/query", nil)
	var qr store.QueryResult
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Snapshot == nil || qr.Frames != 1 {
		t.Fatalf("legacy query result: %q", body)
	}
	if etag := resp.Header.Get("ETag"); etag != "" {
		if resp, _ := get(t, ts.URL+"/query", map[string]string{"If-None-Match": etag}); resp.StatusCode != http.StatusNotModified {
			t.Fatalf("legacy conditional query: %d", resp.StatusCode)
		}
	} else {
		t.Fatal("legacy query carries no ETag")
	}

	// Legacy text errors are preserved (no envelope).
	resp, body = get(t, ts.URL+"/query?from=bogus", nil)
	if resp.StatusCode != http.StatusBadRequest || strings.Contains(string(body), "{") {
		t.Fatalf("legacy error changed shape: %d %q", resp.StatusCode, body)
	}

	// The 405 fix applies to legacy paths too.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/snapshot", nil)
	mresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("legacy POST: %d, want 405", mresp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := storeServer(t)
	resp, body := get(t, ts.URL+"/api/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var sr v1.StatsResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Store == nil || sr.Store.Frames != 1 {
		t.Fatalf("stats misses store gauges: %q", body)
	}
	if resp.Header.Get("ETag") != "" {
		t.Fatal("stats must stay outside the ETag surface")
	}
}

func TestHeadRequests(t *testing.T) {
	ts := liveServer(t, sampleSnapshot(t, 1))
	req, _ := http.NewRequest(http.MethodHead, ts.URL+"/api/v1/snapshot", nil)
	tr := &http.Transport{DisableCompression: true}
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Fatalf("HEAD: %d with %dB body", resp.StatusCode, len(body))
	}
	if resp.Header.Get("ETag") == "" || resp.Header.Get("Content-Length") == "0" {
		t.Fatalf("HEAD lost validation headers: %+v", resp.Header)
	}
}
