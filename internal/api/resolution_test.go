package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	v1 "cwatrace/internal/api/v1"
	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
	"cwatrace/internal/store"
	"cwatrace/internal/streaming"
)

// tierServer builds a tier-folding store holding days whole days (one
// checkpoint per day, so day frames fold as they close) and a server
// over it.
func tierServer(t *testing.T, days int) (*store.Store, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{
		Analytics: streaming.Config{WindowHours: days*24 + 48, TopK: 5},
		Sync:      store.SyncNever,
		Tier:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for d := 0; d < days; d++ {
		var batch []netflow.Record
		for hh := 0; hh < 3; hh++ {
			for c := 0; c < 4; c++ {
				// The id's high byte is the /24's third octet, so every
				// (day, client) pair owns its own prefix and the HLL has a
				// closed-form ground truth of days*4.
				batch = append(batch, keptRecord(d*24+hh*8, (d*4+c)<<8, uint64(300+c)))
			}
		}
		if err := st.Append(batch); err != nil {
			t.Fatal(err)
		}
		if err := st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(Config{History: st})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return st, ts
}

// TestQueryResolutionAPI pins the long-horizon wire contract of
// /api/v1/query: a day-resolution answer carries the long_horizon block
// with an honest approximate marker and day-wide buckets, hour (and the
// unset default) keeps the exact v1 shape with neither new field, auto
// resolves by span, a bogus value is a 400 envelope, and the resolution
// participates in conditional-GET revalidation like any other
// parameter.
func TestQueryResolutionAPI(t *testing.T) {
	const days = 12
	_, ts := tierServer(t, days)

	// Day resolution: the approximate tiered path.
	resp, body := get(t, ts.URL+"/api/v1/query?resolution=day", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("day query: %d %s", resp.StatusCode, body)
	}
	var day v1.QueryResponse
	if err := json.Unmarshal(body, &day); err != nil {
		t.Fatal(err)
	}
	if day.Resolution != "day" || day.LongHorizon == nil {
		t.Fatalf("day query: resolution %q, long_horizon nil=%v", day.Resolution, day.LongHorizon == nil)
	}
	lh := day.LongHorizon
	if !lh.Approximate {
		t.Fatal("tiered answer must be marked approximate")
	}
	if lh.BucketHours != 24 {
		t.Fatalf("day buckets are %dh wide", lh.BucketHours)
	}
	if len(lh.Buckets) == 0 || lh.TierFrames == 0 {
		t.Fatalf("day answer selected %d buckets from %d tier frames", len(lh.Buckets), lh.TierFrames)
	}
	if lh.DistinctPrefixes == 0 || lh.Presence.Count == 0 {
		t.Fatalf("sketch aggregates missing: distinct=%d presence.n=%d", lh.DistinctPrefixes, lh.Presence.Count)
	}
	// Every kept record lands in a distinct /24 per 4-client day group;
	// the HLL estimate must be in the right neighbourhood, not a token.
	if lh.DistinctPrefixes < uint64(days*4*8/10) || lh.DistinctPrefixes > uint64(days*4*12/10) {
		t.Fatalf("distinct prefixes ~%d, want near %d", lh.DistinctPrefixes, days*4)
	}

	// The resolution is part of the validator contract: a 200 with a
	// strong ETag, revalidating to a bodyless 304.
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("day query carried no ETag")
	}
	resp, body = get(t, ts.URL+"/api/v1/query?resolution=day", map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("revalidation: %d with %d body bytes", resp.StatusCode, len(body))
	}

	// hour is the exact path and must stay byte-identical to the
	// parameterless default — the frozen v1 shape, no new fields.
	_, defBody := get(t, ts.URL+"/api/v1/query", nil)
	_, hourBody := get(t, ts.URL+"/api/v1/query?resolution=hour", nil)
	if !bytes.Equal(defBody, hourBody) {
		t.Fatal("resolution=hour diverges from the parameterless exact path")
	}
	if bytes.Contains(defBody, []byte(`"long_horizon"`)) || bytes.Contains(defBody, []byte(`"resolution"`)) {
		t.Fatal("exact path leaked long-horizon fields into the frozen v1 shape")
	}

	// auto over the full 12-day history resolves to day (spans over 8
	// days downsample; spans over 62 go to week).
	_, autoBody := get(t, ts.URL+"/api/v1/query?resolution=auto", nil)
	var auto v1.QueryResponse
	if err := json.Unmarshal(autoBody, &auto); err != nil {
		t.Fatal(err)
	}
	if auto.Resolution != "day" || auto.LongHorizon == nil {
		t.Fatalf("auto over %d days resolved to %q", days, auto.Resolution)
	}
	// A short sub-span stays on the exact path under auto.
	from := entime.StudyStart.Format(time.RFC3339)
	to := entime.StudyStart.Add(48 * time.Hour).Format(time.RFC3339)
	_, shortBody := get(t, ts.URL+"/api/v1/query?resolution=auto&from="+from+"&to="+to, nil)
	var short v1.QueryResponse
	if err := json.Unmarshal(shortBody, &short); err != nil {
		t.Fatal(err)
	}
	if short.Resolution != "" || short.LongHorizon != nil {
		t.Fatalf("auto over 2 days took the tiered path: resolution %q", short.Resolution)
	}

	// An unknown resolution is a structured 400.
	resp, body = get(t, ts.URL+"/api/v1/query?resolution=fortnight", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus resolution: %d", resp.StatusCode)
	}
	decodeError(t, body)
}

// TestLegacyQueryRejectsResolution pins the compatibility boundary: the
// legacy /query shape cannot carry a long-horizon block, so the
// parameter is refused loudly instead of silently ignored.
func TestLegacyQueryRejectsResolution(t *testing.T) {
	_, ts := tierServer(t, 10)
	resp, body := get(t, ts.URL+"/query?resolution=day", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("legacy /query?resolution=day: %d %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("/api/v1/query")) {
		t.Fatalf("rejection must point at the v1 endpoint: %s", body)
	}
	// Without the parameter the legacy endpoint still answers.
	resp, _ = get(t, ts.URL+"/query", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy /query without resolution: %d", resp.StatusCode)
	}
}
