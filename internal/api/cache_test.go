package api

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheSingleFlight requires N concurrent identical requests to
// cost exactly one fill.
func TestCacheSingleFlight(t *testing.T) {
	c := newRespCache(8)
	var fills atomic.Int32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			body, err := c.get("k", func() ([]byte, error) {
				fills.Add(1)
				return []byte("body"), nil
			})
			if err != nil || string(body) != "body" {
				t.Errorf("get: %q %v", body, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times, want 1", got)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := newRespCache(8)
	calls := 0
	fill := func() ([]byte, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient")
		}
		return []byte("ok"), nil
	}
	if _, err := c.get("k", fill); err == nil {
		t.Fatal("first fill error swallowed")
	}
	body, err := c.get("k", fill)
	if err != nil || string(body) != "ok" {
		t.Fatalf("retry after error: %q %v", body, err)
	}
	if calls != 2 {
		t.Fatalf("fill ran %d times, want 2", calls)
	}
}

func TestCachePanicReleasesWaiters(t *testing.T) {
	c := newRespCache(8)
	if _, err := c.get("k", func() ([]byte, error) { panic("boom") }); err == nil {
		t.Fatal("panicking fill returned no error")
	}
	// The key is free again.
	body, err := c.get("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(body) != "ok" {
		t.Fatalf("after panic: %q %v", body, err)
	}
}

func TestCacheEviction(t *testing.T) {
	c := newRespCache(4)
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := c.get(key, func() ([]byte, error) { return []byte(key), nil }); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	if n > 4 {
		t.Fatalf("cache holds %d entries, cap 4", n)
	}
	// The most recent key is still served without a refill.
	refilled := false
	if _, err := c.get("k9", func() ([]byte, error) { refilled = true; return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if refilled {
		t.Fatal("LRU evicted the most recently used key")
	}
}
