package v1

import (
	"encoding/json"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"

	"cwatrace/internal/core"
	"cwatrace/internal/netflow"
	"cwatrace/internal/streaming"
)

// sampleSnapshot aggregates a handful of records (some kept, some
// filtered) into a merged streaming snapshot with the hourly series,
// census and prefix leaderboard populated.
func sampleSnapshot(t *testing.T) *streaming.Snapshot {
	t.Helper()
	cfg := streaming.Config{WindowHours: 48, TopK: 5}.WithDefaults()
	a := streaming.New(cfg)
	f := core.DefaultFilter()
	for i := 0; i < 40; i++ {
		r := netflow.Record{
			Key: netflow.Key{
				Src:     f.ServerPrefixes[0].Addr(),
				Dst:     netip.AddrFrom4([4]byte{100, 64, byte(i % 7), byte(i)}),
				SrcPort: netflow.PortHTTPS,
				DstPort: uint16(50000 + i),
				Proto:   netflow.ProtoTCP,
			},
			Packets: 3,
			Bytes:   uint64(500 + i),
			First:   cfg.Origin.Add(time.Duration(i%8) * time.Hour),
		}
		r.Last = r.First.Add(time.Second)
		dropped := r
		dropped.SrcPort = 80
		a.Ingest([]netflow.Record{r, dropped})
	}
	return a.Snapshot()
}

func TestParseFields(t *testing.T) {
	cases := []struct {
		in      string
		want    FieldSet
		wantErr bool
	}{
		{in: "", want: AllFields},
		{in: "hourly", want: FieldHourly},
		{in: "hourly,prefixes", want: FieldHourly | FieldPrefixes},
		{in: " spikes , districts ", want: FieldSpikes | FieldDistricts},
		{in: "hourly,hourly", want: FieldHourly},
		{in: "filters", want: FieldFilters},
		{in: ",,", want: AllFields},
		{in: "hourly,bogus", wantErr: true},
		{in: "Hourly", wantErr: true}, // names are case-sensitive
	}
	for _, tc := range cases {
		got, err := ParseFields(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseFields(%q) = %v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseFields(%q): %v", tc.in, err)
		} else if got != tc.want {
			t.Errorf("ParseFields(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// The canonical rendering round-trips and is order-stable.
	set, _ := ParseFields("districts,hourly")
	if set.String() != "hourly,districts" {
		t.Errorf("canonical form %q, want %q", set.String(), "hourly,districts")
	}
	if rt, err := ParseFields(set.String()); err != nil || rt != set {
		t.Errorf("canonical form does not round-trip: %v %v", rt, err)
	}
}

// TestNewSnapshotSubsetting pins the field-selection contract: a
// selected section is exactly the corresponding slice of the full
// projection, and unselected sections are absent from the JSON.
func TestNewSnapshotSubsetting(t *testing.T) {
	src := sampleSnapshot(t)
	full := NewSnapshot(src, AllFields, 0)
	if len(full.Hours) == 0 || full.Census == nil || len(full.TopPrefixes) == 0 {
		t.Fatalf("sample snapshot too empty to test with: %+v", full)
	}

	hourly := NewSnapshot(src, FieldHourly, 0)
	if !reflect.DeepEqual(hourly.Hours, full.Hours) || hourly.SeriesStart != full.SeriesStart {
		t.Fatal("fields=hourly series differs from the full projection's")
	}
	if hourly.Census != nil || hourly.TopPrefixes != nil || hourly.Spikes != nil || hourly.Districts != nil {
		t.Fatalf("fields=hourly leaked other sections: %+v", hourly)
	}

	var decoded map[string]any
	b, err := json.Marshal(hourly)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"census", "top_prefixes", "spikes", "districts", "late", "located"} {
		if _, ok := decoded[absent]; ok {
			t.Errorf("fields=hourly JSON carries %q", absent)
		}
	}
	for _, present := range []string{"origin", "window_hours", "hours"} {
		if _, ok := decoded[present]; !ok {
			t.Errorf("fields=hourly JSON misses %q", present)
		}
	}

	filters := NewSnapshot(src, FieldFilters, 0)
	if !reflect.DeepEqual(*filters.Census, src.Census) {
		t.Fatal("fields=filters census differs from the source's")
	}
}

func TestNewSnapshotTopTruncation(t *testing.T) {
	src := sampleSnapshot(t)
	if len(src.TopPrefixes) < 3 {
		t.Fatalf("want ≥3 prefixes in the sample, got %d", len(src.TopPrefixes))
	}
	full := NewSnapshot(src, AllFields, 0)
	top2 := NewSnapshot(src, AllFields, 2)
	if len(top2.TopPrefixes) != 2 {
		t.Fatalf("top=2 kept %d prefixes", len(top2.TopPrefixes))
	}
	if !reflect.DeepEqual(top2.TopPrefixes, full.TopPrefixes[:2]) {
		t.Fatal("top=2 prefixes are not the leading slice of the ranked leaderboard")
	}
	// top larger than the list is a no-op.
	if got := NewSnapshot(src, AllFields, 1000); !reflect.DeepEqual(got.TopPrefixes, full.TopPrefixes) {
		t.Fatal("oversized top truncated the leaderboard")
	}
	// The hourly series is never truncated by top.
	if !reflect.DeepEqual(top2.Hours, full.Hours) {
		t.Fatal("top truncated the hourly series")
	}
}

func TestSnapshotStreamingRoundTrip(t *testing.T) {
	src := sampleSnapshot(t)
	back := NewSnapshot(src, AllFields, 0).Streaming()
	ga, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := json.Marshal(src)
	if err != nil {
		t.Fatal(err)
	}
	if string(ga) != string(gb) {
		t.Fatalf("v1 round trip altered the snapshot:\n got %.300s\nwant %.300s", ga, gb)
	}
}

func TestErrorString(t *testing.T) {
	e := &Error{Code: CodeBadRequest, Message: "bad from", Detail: "want RFC 3339"}
	for _, want := range []string{CodeBadRequest, "bad from", "RFC 3339"} {
		if got := e.Error(); !strings.Contains(got, want) {
			t.Errorf("Error() = %q missing %q", got, want)
		}
	}
}
