// Package v1 is the frozen wire schema of the collectord analytics API
// (the /api/v1 surface): typed request/response structs, the structured
// error envelope, and the field-selection vocabulary. Every consumer —
// the server (internal/api), the Go client (internal/api/client),
// cwanalyze's remote mode and the apiload generator — shares these
// types, so the contract lives in exactly one place.
//
// Versioning policy: v1 shapes only ever gain optional
// (omitempty-tagged) fields. Any change that would alter the meaning or
// encoding of an existing field forks a v2 package instead; the aliases
// below re-export internal aggregate types, which freezes their JSON
// encodings into the contract (a wire-incompatible change to one of
// them must copy the old shape into this package first).
package v1

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cwatrace/internal/core"
	"cwatrace/internal/ingest"
	"cwatrace/internal/store"
	"cwatrace/internal/streaming"
	"cwatrace/internal/tier"
)

// Re-exported aggregate rows. The JSON encodings of these types are
// part of the v1 contract (see the package comment).
type (
	// HourPoint is one bucket of the hourly Figure-2 series.
	HourPoint = streaming.HourPoint
	// Spike is one hour flagged by the launch/attention detector.
	Spike = streaming.Spike
	// PrefixCount is one row of the active-prefix leaderboard.
	PrefixCount = streaming.PrefixCount
	// DistrictCount is one row of the per-district rollup.
	DistrictCount = streaming.DistrictCount
	// Census is the paper's data-set filter census (T1).
	Census = core.Census
	// IngestStats are the live pipeline counters.
	IngestStats = ingest.Stats
	// StoreMetrics are the durable-store gauges.
	StoreMetrics = store.Metrics
	// LongHorizon is the tiered day/week-resolution answer block (see
	// internal/tier.Answer): exact downsampled buckets and census plus
	// the sketched distinct-prefix and presence estimates, carried with
	// the marshaled sketch state so routers can merge across shards.
	LongHorizon = tier.Answer
)

// Error codes carried in the error envelope. A draining daemon is not
// an error: /api/v1/health reports it as a HealthResponse with
// StatusDraining and HTTP 503.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeTimeout          = "timeout"
	CodeInternal         = "internal"
	// CodeUnavailable is a clustered router with no reachable shard: the
	// response cannot even be partial.
	CodeUnavailable = "unavailable"
)

// Error is the structured error the API returns on every failure path,
// wrapped in an ErrorResponse envelope. It doubles as the Go error the
// client surfaces, so callers can switch on Code.
type Error struct {
	// Code is a stable machine-readable identifier (the Code* constants).
	Code string `json:"code"`
	// Message is the human-readable summary.
	Message string `json:"message"`
	// Detail optionally narrows the cause (the offending parameter, the
	// underlying error text).
	Detail string `json:"detail,omitempty"`
	// Status is the HTTP status the server sent; the client fills it in,
	// it never travels in the body.
	Status int `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("api: %s: %s (%s)", e.Code, e.Message, e.Detail)
	}
	return fmt.Sprintf("api: %s: %s", e.Code, e.Message)
}

// ErrorResponse is the envelope every non-2xx response body carries.
type ErrorResponse struct {
	Error *Error `json:"error"`
}

// Health status values.
const (
	StatusOK       = "ok"
	StatusDraining = "draining"
	// StatusDegraded is a clustered router that is serving, but with one
	// or more shards unreachable (partial data; see Degraded).
	StatusDegraded = "degraded"
)

// Degraded is the partial-failure contract of the clustered query
// router: when one or more shard nodes cannot be reached, data
// responses still merge every shard that answered, but they carry this
// marker (HTTP 206 Partial Content, Cache-Control: no-store, no ETag)
// so a partial total can never be cached — or consumed — as a complete
// one. Single-node responses never carry it (the field is omitted, so
// healthy-path bytes are unchanged).
type Degraded struct {
	// MissingShards are the shard indexes that did not answer, ascending.
	MissingShards []int `json:"missing_shards"`
	// Nodes are the unreachable nodes' addresses, parallel to
	// MissingShards.
	Nodes []string `json:"nodes,omitempty"`
	// Detail carries the first per-shard error, for operators.
	Detail string `json:"detail,omitempty"`
	// RequestID echoes the X-Request-Id of the request that observed the
	// degradation, so a partial response in a dashboard can be traced
	// back through the router and shard access logs. Optional (added
	// after v1 froze; see the versioning policy above).
	RequestID string `json:"request_id,omitempty"`
}

// HealthResponse is the /api/v1/health body. Status is StatusOK on a
// serving daemon (HTTP 200) and StatusDraining once SIGTERM drain has
// begun (HTTP 503), so load balancers stop routing to a daemon that is
// checkpointing its way down. A clustered router additionally reports
// StatusDegraded when some (HTTP 200) or all (HTTP 503) shards are
// unreachable.
type HealthResponse struct {
	Status string `json:"status"`
	// Degraded names the unreachable shards on a clustered router.
	Degraded *Degraded `json:"degraded,omitempty"`
}

// StatsResponse is the /api/v1/stats body: the live pipeline counters
// plus, on a durable collector, the store gauges. Stats are a
// diagnostic side channel — they change with every packet, so the
// endpoint is deliberately outside the cacheable/ETagged surface. A
// clustered router serves the field-wise sum over its shard nodes
// (store gauges only when every reachable node is durable).
type StatsResponse struct {
	Ingest IngestStats   `json:"ingest"`
	Store  *StoreMetrics `json:"store,omitempty"`
	// Degraded marks a partial sum (unreachable shards excluded).
	Degraded *Degraded `json:"degraded,omitempty"`
}

// Snapshot is the analytics view served by /api/v1/snapshot and
// embedded in QueryResponse. The always-present header fields describe
// the window; each aggregate section is optional and included per the
// request's field selection (nil and absent otherwise).
type Snapshot struct {
	Origin      time.Time `json:"origin"`
	WindowHours int       `json:"window_hours"`
	// SeriesStart is the hour index of Hours[0] relative to Origin
	// (meaningful with FieldHourly).
	SeriesStart int `json:"series_start"`

	// Hours is the hourly Figure-2 flow/byte series (FieldHourly).
	Hours []HourPoint `json:"hours,omitempty"`
	// Census and Late report the data-set filter outcomes (FieldFilters).
	Census *Census `json:"census,omitempty"`
	Late   uint64  `json:"late,omitempty"`
	// Spikes holds the launch/attention detector hits (FieldSpikes).
	Spikes []Spike `json:"spikes,omitempty"`
	// TopPrefixes is the active client /24 leaderboard (FieldPrefixes).
	TopPrefixes []PrefixCount `json:"top_prefixes,omitempty"`
	// Districts and Located carry the Figure-3 rollup (FieldDistricts).
	Districts []DistrictCount `json:"districts,omitempty"`
	Located   uint64          `json:"located,omitempty"`

	// Degraded marks a partial clustered response (see Degraded).
	Degraded *Degraded `json:"degraded,omitempty"`
}

// QueryResponse is the /api/v1/query body — store.QueryResult in v1
// clothing.
type QueryResponse struct {
	// From/To echo the requested bounds (zero = open end).
	From time.Time `json:"from"`
	To   time.Time `json:"to"`
	// Frames is how many checkpoint frames were merged; TailIncluded
	// reports whether the live (un-checkpointed) tail contributed.
	Frames       int  `json:"frames"`
	TailIncluded bool `json:"tail_included"`
	// Snapshot is the merged, hour-trimmed view of the range. Under a
	// day/week resolution it holds only the exact raw residual beyond
	// tier coverage; the tiered aggregates live in LongHorizon.
	Snapshot *Snapshot `json:"snapshot"`
	// Resolution echoes the effective answer resolution and LongHorizon
	// carries the tiered answer; both are absent on the exact hourly
	// path (?resolution omitted, hour, or a store without tiers).
	Resolution  string       `json:"resolution,omitempty"`
	LongHorizon *LongHorizon `json:"long_horizon,omitempty"`
	// Degraded marks a partial clustered response (see Degraded).
	Degraded *Degraded `json:"degraded,omitempty"`
}

// FieldSet selects snapshot sections (?fields=hourly,prefixes,...).
type FieldSet uint

const (
	// FieldHourly selects the hourly Figure-2 series.
	FieldHourly FieldSet = 1 << iota
	// FieldFilters selects the data-set filter census.
	FieldFilters
	// FieldSpikes selects the spike-detector hits.
	FieldSpikes
	// FieldPrefixes selects the top-K prefix leaderboard.
	FieldPrefixes
	// FieldDistricts selects the per-district rollup.
	FieldDistricts

	// AllFields is the default selection: everything.
	AllFields = FieldHourly | FieldFilters | FieldSpikes | FieldPrefixes | FieldDistricts
)

// fieldNames maps wire names to bits in canonical order.
var fieldNames = []struct {
	name string
	bit  FieldSet
}{
	{"hourly", FieldHourly},
	{"filters", FieldFilters},
	{"spikes", FieldSpikes},
	{"prefixes", FieldPrefixes},
	{"districts", FieldDistricts},
}

// ParseFields parses a comma-separated ?fields= value. The empty string
// selects every section; an unknown name is a request error.
func ParseFields(s string) (FieldSet, error) {
	if s == "" {
		return AllFields, nil
	}
	var set FieldSet
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		found := false
		for _, fn := range fieldNames {
			if part == fn.name {
				set |= fn.bit
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("unknown field %q (want %s)", part, FieldList())
		}
	}
	if set == 0 {
		return AllFields, nil
	}
	return set, nil
}

// Has reports whether every bit of f2 is selected.
func (f FieldSet) Has(f2 FieldSet) bool { return f&f2 == f2 }

// String renders the selection canonically (stable order, no spaces) —
// the form cache keys and client URLs use.
func (f FieldSet) String() string {
	var names []string
	for _, fn := range fieldNames {
		if f.Has(fn.bit) {
			names = append(names, fn.name)
		}
	}
	return strings.Join(names, ",")
}

// FieldList names every valid field, for error messages and usage text.
func FieldList() string {
	names := make([]string, len(fieldNames))
	for i, fn := range fieldNames {
		names[i] = fn.name
	}
	return strings.Join(names, ",")
}

// NewSnapshot projects a merged streaming snapshot onto the v1 shape:
// only the selected sections are populated, and top > 0 truncates the
// ranked lists — TopPrefixes keeps its leading top entries (it is
// already ranked by flows), Districts is re-ranked by flows descending
// (ties by ID) before truncation so "top N districts" means the busiest
// ones, not the alphabetically first. top <= 0 keeps everything, with
// districts in their canonical ID order.
func NewSnapshot(src *streaming.Snapshot, fields FieldSet, top int) *Snapshot {
	s := &Snapshot{
		Origin:      src.Origin,
		WindowHours: src.WindowHours,
	}
	if fields.Has(FieldHourly) {
		s.SeriesStart = src.SeriesStart
		s.Hours = src.Hours
	}
	if fields.Has(FieldFilters) {
		c := src.Census
		s.Census = &c
		s.Late = src.Late
	}
	if fields.Has(FieldSpikes) {
		s.Spikes = src.Spikes
	}
	if fields.Has(FieldPrefixes) {
		s.TopPrefixes = src.TopPrefixes
		if top > 0 && len(s.TopPrefixes) > top {
			s.TopPrefixes = s.TopPrefixes[:top]
		}
	}
	if fields.Has(FieldDistricts) {
		s.Districts = src.Districts
		s.Located = src.Located
		if top > 0 && len(s.Districts) > top {
			ranked := append([]DistrictCount(nil), src.Districts...)
			sort.Slice(ranked, func(i, j int) bool {
				if ranked[i].Flows != ranked[j].Flows {
					return ranked[i].Flows > ranked[j].Flows
				}
				return ranked[i].ID < ranked[j].ID
			})
			s.Districts = ranked[:top]
		}
	}
	return s
}

// Streaming converts the v1 snapshot back into the internal shape, so
// remote consumers (cwanalyze -addr) can reuse every local renderer and
// derivation (Snapshot.Figure2). Sections the field selection omitted
// come back zero-valued.
func (s *Snapshot) Streaming() *streaming.Snapshot {
	out := &streaming.Snapshot{
		Origin:      s.Origin,
		WindowHours: s.WindowHours,
		SeriesStart: s.SeriesStart,
		Hours:       s.Hours,
		Spikes:      s.Spikes,
		TopPrefixes: s.TopPrefixes,
		Districts:   s.Districts,
		Late:        s.Late,
		Located:     s.Located,
	}
	if s.Census != nil {
		out.Census = *s.Census
	}
	return out
}
