// The API metric catalogue: per-endpoint request counts and latency
// distributions (labeled by a fixed endpoint vocabulary, never by raw
// request paths — an attacker probing random URLs must not mint metric
// series), the in-flight gauge, and the conditional-GET effectiveness
// counters (304s served, single-flight cache hits vs misses).
package api

import (
	"strings"
	"time"

	"cwatrace/internal/obs"
)

// endpointLabels is the closed label vocabulary for api_requests_total
// and api_request_seconds. Unknown paths fold into "other".
var endpointLabels = []string{
	"v1_snapshot", "v1_query", "v1_health", "v1_stats", "v1_other",
	"legacy_snapshot", "legacy_query", "legacy_health",
	"metrics", "other",
}

// endpointLabel maps a request path onto the vocabulary.
func endpointLabel(path string) string {
	switch path {
	case "/api/v1/snapshot":
		return "v1_snapshot"
	case "/api/v1/query":
		return "v1_query"
	case "/api/v1/health":
		return "v1_health"
	case "/api/v1/stats":
		return "v1_stats"
	case "/snapshot":
		return "legacy_snapshot"
	case "/query":
		return "legacy_query"
	case "/healthz":
		return "legacy_health"
	case "/metrics":
		return "metrics"
	}
	if strings.HasPrefix(path, "/api/v1/") {
		return "v1_other"
	}
	return "other"
}

// endpointInstruments is one endpoint label's counter + histogram pair.
type endpointInstruments struct {
	requests *obs.Counter
	latency  *obs.Histogram
}

// apiMetrics holds the server's instruments. The zero value (nil map,
// nil instruments) is the disabled mode.
type apiMetrics struct {
	inFlight    *obs.Gauge
	notModified *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	endpoints   map[string]endpointInstruments
}

func (m *apiMetrics) register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.inFlight = reg.Gauge("api_inflight_requests", "Requests currently being handled.")
	m.notModified = reg.Counter("api_not_modified_total",
		"Conditional GETs answered 304 Not Modified (no body marshaled or sent).")
	m.cacheHits = reg.Counter("api_cache_hits_total",
		"Single-flight response cache hits (body served without re-marshaling).")
	m.cacheMisses = reg.Counter("api_cache_misses_total",
		"Single-flight response cache misses (one marshal per miss).")
	m.endpoints = make(map[string]endpointInstruments, len(endpointLabels))
	for _, label := range endpointLabels {
		l := obs.L("endpoint", label)
		m.endpoints[label] = endpointInstruments{
			requests: reg.Counter("api_requests_total", "Requests handled, by endpoint.", l),
			latency: reg.Histogram("api_request_seconds",
				"Request handling latency, by endpoint.", obs.DurationBuckets, l),
		}
	}
}

// observe records one finished request. No-op when disabled.
func (m *apiMetrics) observe(path string, status int, dur time.Duration) {
	if m.endpoints == nil {
		return
	}
	e := m.endpoints[endpointLabel(path)]
	e.requests.Inc()
	e.latency.Observe(dur.Seconds())
	if status == 304 {
		m.notModified.Inc()
	}
}
