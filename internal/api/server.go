// Package api is the versioned HTTP analytics surface of collectord:
// the typed /api/v1/{snapshot,query,health,stats} endpoints (wire
// schema in internal/api/v1), the deprecated legacy aliases (/snapshot,
// /query, /healthz), and the middleware they share — method
// enforcement, request timeouts, gzip, access logging, and the
// performance headline: conditional-GET caching. Every cacheable
// response carries a strong ETag derived from the data-generation token
// (store.Version, or a pipeline-stats hash on a memory-only collector)
// plus the request parameters; repeated reads and CDN front-ends
// revalidate with If-None-Match and get 304 Not Modified instead of a
// full re-marshal, and a single-flight response cache collapses N
// identical concurrent hits into one serialization.
package api

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	v1 "cwatrace/internal/api/v1"
	"cwatrace/internal/ingest"
	"cwatrace/internal/obs"
	"cwatrace/internal/store"
	"cwatrace/internal/streaming"
	"cwatrace/internal/tier"
)

// Live is the in-memory data source: the ingest pipeline (or anything
// shaped like it). Stats feeds /api/v1/stats and the legacy /snapshot
// body; Snapshot serves the analytics on a collector without a durable
// store.
type Live interface {
	Snapshot() *streaming.Snapshot
	Stats() ingest.Stats
}

// History is the durable data source: the store of a -data-dir
// collector. When present it owns the snapshot state (SinkOnly mode)
// and answers historical range queries; Version feeds the ETag
// derivation (see store.Version for the exact invalidation contract).
type History interface {
	Snapshot() *streaming.Snapshot
	Query(from, to time.Time) (*store.QueryResult, error)
	// QueryResolution is Query with a resolution: hour is the exact
	// path, day/week answer from the downsampled tier frames plus the
	// exact raw residual, auto picks by span (see store.QueryResolution).
	QueryResolution(from, to time.Time, res tier.Resolution) (*store.QueryResult, error)
	Version(from, to time.Time) uint64
	Metrics() store.Metrics
}

// Config parameterizes a Server. At least one of Live, History and
// Fanout must be set; a durable collector sets Live and History, a
// clustered query router sets Fanout alone.
type Config struct {
	Live    Live
	History History
	// Fanout turns the server into a clustered query router: the data
	// endpoints gather-and-merge across shard nodes instead of reading a
	// local source (see Fanout in fanout.go). Live and History are
	// ignored by the v1 data endpoints when set.
	Fanout Fanout
	// BootNonce overrides the ETag boot nonce (0 = time-based, or the
	// Fanout's fleet nonce in fan-out mode). Tests use it to pin
	// validators.
	BootNonce uint64
	// Log receives one access-log line per request (nil disables access
	// logging; write/encode errors still reach the standard logger).
	Log *log.Logger
	// Timeout bounds request handling (default 30s).
	Timeout time.Duration
	// CacheEntries bounds the single-flight response cache (default 128).
	CacheEntries int
	// Metrics, when set, registers the API telemetry on the registry
	// (see metrics.go for the catalogue). Nil runs uninstrumented.
	Metrics *obs.Registry
	// SlowQuery logs any request that takes at least this long (via the
	// error logger, so it surfaces even without access logging). Zero
	// disables the slow-query log.
	SlowQuery time.Duration
	// Tracer, when set, records one span tree per request into the
	// flight recorder's trace ring (tail-sampled; see obs.Tracer). The
	// root span is named by the endpoint vocabulary and parented under
	// a caller's X-Trace-Parent, so router and shard traces merge into
	// one cross-process tree. Nil disables span tracing.
	Tracer *obs.Tracer
}

// Server is the mounted API surface. It is an http.Handler; extra
// endpoints (collectord's /metrics) join the same middleware stack via
// Handle.
type Server struct {
	cfg      Config
	boot     uint64
	mux      *http.ServeMux
	handler  http.Handler
	cache    *respCache
	m        apiMetrics
	draining atomic.Bool
}

// New builds the server and mounts the v1 surface plus the deprecated
// legacy aliases.
func New(cfg Config) (*Server, error) {
	if cfg.Live == nil && cfg.History == nil && cfg.Fanout == nil {
		return nil, fmt.Errorf("api: need a Live, History or Fanout source")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	// The boot nonce scopes ETags to one state lineage. A router derives
	// it from the fleet instead of its own start time, so two routers
	// fronting the same nodes (and one router across restarts) emit
	// interchangeable validators.
	boot := uint64(time.Now().UnixNano())
	if cfg.Fanout != nil {
		boot = cfg.Fanout.Nonce()
	}
	if cfg.BootNonce != 0 {
		boot = cfg.BootNonce
	}
	s := &Server{
		cfg:   cfg,
		boot:  boot,
		mux:   http.NewServeMux(),
		cache: newRespCache(cfg.CacheEntries),
	}
	s.m.register(cfg.Metrics)
	s.cache.hits, s.cache.misses = s.m.cacheHits, s.m.cacheMisses

	s.mux.Handle("/api/v1/snapshot", s.get(s.handleSnapshot))
	s.mux.Handle("/api/v1/query", s.get(s.handleQuery))
	s.mux.Handle("/api/v1/health", s.get(s.handleHealth))
	s.mux.Handle("/api/v1/stats", s.get(s.handleStats))
	s.mux.Handle("/api/v1/", s.get(s.handleUnknown))

	// Deprecated aliases over the same plumbing (same sources, cache and
	// ETags; legacy body shapes and text errors preserved).
	s.mux.Handle("/snapshot", s.get(s.handleLegacySnapshot))
	s.mux.Handle("/query", s.get(s.handleLegacyQuery))
	s.mux.Handle("/healthz", s.get(s.handleLegacyHealth))

	timeoutBody, _ := json.Marshal(v1.ErrorResponse{Error: &v1.Error{
		Code:    v1.CodeTimeout,
		Message: "request timed out",
	}})
	// The JSON default sits OUTSIDE the timeout handler: on a timeout,
	// http.TimeoutHandler writes its body straight to the outer writer
	// with no Content-Type, and content sniffing would label the error
	// envelope text/plain. Every real handler sets its own type, which
	// overrides this default on the normal path.
	// The request-id middleware sits outermost so the id is in the
	// context (and on the response) for everything below it, the access
	// log included.
	s.handler = s.requestID(s.accessLog(jsonDefault(http.TimeoutHandler(s.mux, cfg.Timeout, string(timeoutBody)))))
	return s, nil
}

// requestID adopts a valid client-supplied X-Request-Id (a router
// fanning out on behalf of a traced request) or mints one at this edge,
// threads it through the context, and echoes it on the response so
// callers learn the id their request traveled under.
func (s *Server) requestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(obs.RequestIDHeader)
		if !obs.ValidRequestID(id) {
			id = obs.NewRequestID()
		}
		w.Header().Set(obs.RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(obs.WithRequestID(r.Context(), id)))
	})
}

// jsonDefault pre-declares application/json so even the timeout
// handler's synthesized envelope carries the right type.
func jsonDefault(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		next.ServeHTTP(w, r)
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Handle mounts an extra GET endpoint behind the shared middleware
// (method enforcement, timeout, access log).
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, s.get(h.ServeHTTP))
}

// SetDraining flips the health endpoints between 200 ok and 503
// draining. collectord sets it at the start of the SIGTERM drain so
// load balancers stop routing to a daemon that is checkpointing its way
// down.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// ---- middleware ----

// statusWriter records what the handler produced for the access log and
// surfaces the first body-write error instead of dropping it.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
	err    error
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	if err != nil && sw.err == nil {
		sw.err = err
	}
	return n, err
}

// accessLog wraps the stack with per-request logging, the per-endpoint
// metrics, and the slow-query log. The line format is part of the
// operational contract (TestAccessLogFormat pins it):
//
//	METHOD REQUEST-URI STATUS BYTESB DURATIONus id=REQUEST-ID
//
// Body-write failures (a client that went away mid-response) are logged
// even when access logging is off — a dropped response must never be
// silent.
func (s *Server) accessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		// The root span shares the request id as its trace id (the
		// requestID middleware outside us already threaded it), named by
		// the same endpoint vocabulary as the metrics, and parented under
		// a fanning-out router's span when X-Trace-Parent arrived with
		// the request.
		var sp *obs.Span
		if s.cfg.Tracer != nil {
			parent, _ := obs.ParseSpanID(r.Header.Get(obs.TraceParentHeader))
			var ctx context.Context
			ctx, sp = s.cfg.Tracer.StartTrace(r.Context(), endpointLabel(r.URL.Path), parent)
			sp.Set(obs.Str("method", r.Method), obs.Str("uri", r.URL.RequestURI()))
			r = r.WithContext(ctx)
		}
		s.m.inFlight.Add(1)
		next.ServeHTTP(sw, r)
		s.m.inFlight.Add(-1)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := time.Since(start)
		id := obs.RequestID(r.Context())
		if sp != nil {
			sp.SetStatus(sw.status)
			sp.Set(obs.Int("bytes", int64(sw.bytes)))
			sp.End()
		}
		if s.cfg.Log != nil {
			s.cfg.Log.Printf("%s %s %d %dB %dus id=%s",
				r.Method, r.URL.RequestURI(), sw.status, sw.bytes, dur.Microseconds(), id)
		}
		s.m.observe(r.URL.Path, sw.status, dur)
		if s.cfg.SlowQuery > 0 && dur >= s.cfg.SlowQuery {
			// A slow fan-out names its slow shard right in the log line:
			// the per-shard breakdown is already on the response as
			// Server-Timing, so quote it instead of recomputing.
			if shards := sw.Header().Get("Server-Timing"); shards != "" {
				s.errorf("slow query: %s %s %d %dus id=%s shards=%q",
					r.Method, r.URL.RequestURI(), sw.status, dur.Microseconds(), id, shards)
			} else {
				s.errorf("slow query: %s %s %d %dus id=%s",
					r.Method, r.URL.RequestURI(), sw.status, dur.Microseconds(), id)
			}
		}
		if sw.err != nil {
			s.errorf("writing %s %s: %v", r.Method, r.URL.Path, sw.err)
		}
	})
}

// get enforces the read-only method contract: anything but GET/HEAD is
// 405 with an Allow header and the structured error envelope.
func (s *Server) get(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			s.writeError(w, http.StatusMethodNotAllowed, v1.CodeMethodNotAllowed,
				"method "+r.Method+" not allowed", "the API is read-only: GET or HEAD")
			return
		}
		h(w, r)
	})
}

// errorf reports server-side I/O problems. It prefers the configured
// logger and falls back to the process logger, so failures surface even
// on a server built without access logging.
func (s *Server) errorf(format string, args ...any) {
	l := s.cfg.Log
	if l == nil {
		l = log.Default()
	}
	l.Printf("api: "+format, args...)
}

// ---- request parsing ----

// reqParams are the presentation parameters shared by the cacheable
// endpoints. Their canonical rendering is part of the ETag input.
type reqParams struct {
	fields v1.FieldSet
	top    int
	pretty bool
}

// key renders the parameters canonically for ETag derivation.
func (p reqParams) key() string {
	return fmt.Sprintf("fields=%s&top=%d&pretty=%t", p.fields, p.top, p.pretty)
}

// parseParams reads ?fields=, ?top= and ?pretty=; a bad value is a
// structured 400.
func (s *Server) parseParams(w http.ResponseWriter, r *http.Request) (reqParams, bool) {
	q := r.URL.Query()
	p := reqParams{fields: v1.AllFields}
	var err error
	if p.fields, err = v1.ParseFields(q.Get("fields")); err != nil {
		s.writeError(w, http.StatusBadRequest, v1.CodeBadRequest, "bad fields parameter", err.Error())
		return p, false
	}
	if raw := q.Get("top"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			s.writeError(w, http.StatusBadRequest, v1.CodeBadRequest, "bad top parameter",
				fmt.Sprintf("want a non-negative integer, got %q", raw))
			return p, false
		}
		p.top = n
	}
	p.pretty = prettyRequested(q.Get("pretty"))
	return p, true
}

// prettyRequested interprets ?pretty=. Compact JSON is the default;
// pretty=1 (or true) opts into indentation.
func prettyRequested(v string) bool { return v == "1" || v == "true" }

// ---- handlers ----

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Fanout != nil {
		s.handleFanHealth(w, r)
		return
	}
	resp := v1.HealthResponse{Status: v1.StatusOK}
	status := http.StatusOK
	if s.draining.Load() {
		resp.Status = v1.StatusDraining
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, r, status, resp, prettyRequested(r.URL.Query().Get("pretty")))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Fanout != nil {
		s.handleFanStats(w, r)
		return
	}
	var resp v1.StatsResponse
	if s.cfg.Live != nil {
		resp.Ingest = s.cfg.Live.Stats()
	}
	if s.cfg.History != nil {
		m := s.cfg.History.Metrics()
		resp.Store = &m
	}
	s.writeJSON(w, r, http.StatusOK, resp, prettyRequested(r.URL.Query().Get("pretty")))
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	p, ok := s.parseParams(w, r)
	if !ok {
		return
	}
	if s.cfg.Fanout != nil {
		s.handleFanSnapshot(w, r, p)
		return
	}
	s.serveCached(w, r, "v1/snapshot", p.key(), s.snapshotVersion, func() (any, error) {
		return v1.NewSnapshot(s.snapshotSource()(), p.fields, p.top), nil
	}, p.pretty)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.cfg.History == nil && s.cfg.Fanout == nil {
		s.writeError(w, http.StatusNotFound, v1.CodeNotFound,
			"historical queries need a durable store", "start collectord with -data-dir")
		return
	}
	p, ok := s.parseParams(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	from, err := store.ParseTime(q.Get("from"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, v1.CodeBadRequest, "bad from parameter", err.Error())
		return
	}
	to, err := store.ParseTime(q.Get("to"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, v1.CodeBadRequest, "bad to parameter", err.Error())
		return
	}
	resolution, err := tier.ParseResolution(q.Get("resolution"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, v1.CodeBadRequest, "bad resolution parameter", err.Error())
		return
	}
	if s.cfg.Fanout != nil {
		s.handleFanQuery(w, r, p, from, to, resolution)
		return
	}
	key := fmt.Sprintf("from=%s&to=%s&resolution=%s&%s", stamp(from), stamp(to), resolution, p.key())
	version := func() uint64 { return s.cfg.History.Version(from, to) }
	s.serveCached(w, r, "v1/query", key, version, func() (any, error) {
		res, err := s.cfg.History.QueryResolution(from, to, resolution)
		if err != nil {
			return nil, err
		}
		return &v1.QueryResponse{
			From:         res.From,
			To:           res.To,
			Frames:       res.Frames,
			TailIncluded: res.TailIncluded,
			Snapshot:     v1.NewSnapshot(res.Snapshot, p.fields, p.top),
			Resolution:   string(res.Resolution),
			LongHorizon:  res.LongHorizon,
		}, nil
	}, p.pretty)
}

func (s *Server) handleUnknown(w http.ResponseWriter, r *http.Request) {
	s.writeError(w, http.StatusNotFound, v1.CodeNotFound,
		"no such endpoint", r.URL.Path+" is not part of the v1 surface")
}

// ---- legacy aliases ----

// deprecate marks a legacy response with its successor.
func deprecate(w http.ResponseWriter, successor string) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", "<"+successor+">; rel=\"successor-version\"")
}

func (s *Server) handleLegacyHealth(w http.ResponseWriter, r *http.Request) {
	deprecate(w, "/api/v1/health")
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	body, status := "ok\n", http.StatusOK
	if s.draining.Load() {
		body, status = "draining\n", http.StatusServiceUnavailable
	}
	w.WriteHeader(status)
	if r.Method != http.MethodHead {
		fmt.Fprint(w, body)
	}
}

// legacySnapshotBody is the historical /snapshot shape: pipeline stats
// wrapped around the full snapshot.
type legacySnapshotBody struct {
	Stats    ingest.Stats        `json:"stats"`
	Snapshot *streaming.Snapshot `json:"snapshot"`
}

func (s *Server) handleLegacySnapshot(w http.ResponseWriter, r *http.Request) {
	deprecate(w, "/api/v1/snapshot")
	if s.cfg.Live == nil && s.cfg.History == nil {
		// A pure fan-out router has no local state for the legacy shape to
		// wrap; the v1 surface is the only one it serves.
		http.Error(w, "legacy endpoints are not served in fan-out mode; use /api/v1/snapshot", http.StatusNotFound)
		return
	}
	pretty := prettyRequested(r.URL.Query().Get("pretty"))
	// The legacy body embeds the stats, so the validity token must cover
	// them too: mix the stats hash into the snapshot version. Stats are
	// fetched inside the build so the body matches the token epoch.
	version := func() uint64 { return mix64(s.snapshotVersion(), statsHash(s.liveStats())) }
	key := fmt.Sprintf("pretty=%t", pretty)
	s.serveCached(w, r, "legacy/snapshot", key, version, func() (any, error) {
		return legacySnapshotBody{Stats: s.liveStats(), Snapshot: s.snapshotSource()()}, nil
	}, pretty)
}

func (s *Server) handleLegacyQuery(w http.ResponseWriter, r *http.Request) {
	deprecate(w, "/api/v1/query")
	if s.cfg.History == nil {
		http.Error(w, "historical queries need -data-dir", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	// The legacy shape has no place for the long-horizon answer, so
	// silently ignoring ?resolution= would quietly serve the exact hourly
	// body under a tiered-looking URL. Reject it loudly instead.
	if q.Get("resolution") != "" {
		http.Error(w, "resolution is not supported on the legacy endpoint; use /api/v1/query", http.StatusBadRequest)
		return
	}
	from, err := store.ParseTime(q.Get("from"))
	if err != nil {
		http.Error(w, fmt.Sprintf("from: %v", err), http.StatusBadRequest)
		return
	}
	to, err := store.ParseTime(q.Get("to"))
	if err != nil {
		http.Error(w, fmt.Sprintf("to: %v", err), http.StatusBadRequest)
		return
	}
	pretty := prettyRequested(q.Get("pretty"))
	key := fmt.Sprintf("from=%s&to=%s&pretty=%t", stamp(from), stamp(to), pretty)
	version := func() uint64 { return s.cfg.History.Version(from, to) }
	s.serveCached(w, r, "legacy/query", key, version, func() (any, error) {
		return s.cfg.History.Query(from, to)
	}, pretty)
}

// ---- data-source plumbing ----

// snapshotSource picks the state owner: the durable store when present
// (SinkOnly collectors keep nothing in the lanes), the pipeline
// otherwise.
func (s *Server) snapshotSource() func() *streaming.Snapshot {
	if s.cfg.History != nil {
		return s.cfg.History.Snapshot
	}
	return s.cfg.Live.Snapshot
}

func (s *Server) liveStats() ingest.Stats {
	if s.cfg.Live == nil {
		return ingest.Stats{}
	}
	return s.cfg.Live.Stats()
}

// snapshotVersion is the generation token behind /api/v1/snapshot: the
// store's full-history Version when durable, a hash of the pipeline
// counters otherwise (any processed record changes them, so the token
// over-invalidates but never serves stale 304s).
func (s *Server) snapshotVersion() uint64 {
	if s.cfg.History != nil {
		return s.cfg.History.Version(time.Time{}, time.Time{})
	}
	return statsHash(s.cfg.Live.Stats())
}

// statsHash folds the pipeline counters into a version token.
func statsHash(st ingest.Stats) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", st)
	return h.Sum64()
}

// mix64 combines two version tokens order-sensitively.
func mix64(a, b uint64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%x:%x", a, b)
	return h.Sum64()
}

// stamp renders a query bound for cache keys. The open bound gets a
// non-numeric sentinel: a unix-epoch bound (ParseTime("0")) also has
// UnixNano 0, and the two select very different data — they must never
// share a cache key or validate each other's 304s.
func stamp(t time.Time) string {
	if t.IsZero() {
		return "open"
	}
	return strconv.FormatInt(t.UnixNano(), 10)
}

// ---- response writing ----

// gzipMinBytes is the smallest body worth compressing; health-sized
// responses skip the overhead.
const gzipMinBytes = 1 << 10

var gzipPool = sync.Pool{New: func() any { return gzip.NewWriter(nil) }}

// serveCached is the conditional-GET core shared by every cacheable
// endpoint: derive the strong ETag from (endpoint, params, data
// generation), answer If-None-Match hits with a bodyless 304, and
// otherwise serve the marshaled body out of the single-flight cache —
// the ETag is the cache key, so N identical hits between data changes
// cost one serialization.
//
// A strong ETag promises byte-identical bodies, so the generation is
// re-read AFTER the body is built: a data change that lands between
// the two reads would otherwise let a newer body travel under the
// older tag (and, via the cache, be replayed to a shared cache that
// already holds the genuine older body). On a mismatch the build
// retries under the fresh tag; under pathological churn the response
// goes out without a validator rather than with a dishonest one.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, endpoint, params string, version func() uint64, build func() (any, error), pretty bool) {
	h := w.Header()
	h.Set("Cache-Control", "no-cache") // cacheable, but revalidate: ETags are the invalidation channel
	var (
		body []byte
		etag string
	)
	for attempt := 0; ; attempt++ {
		before := version()
		etag = etagFor(s.boot, endpoint, params, before)
		if etagMatch(r.Header.Get("If-None-Match"), etag) {
			h.Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		var err error
		body, err = s.cache.get(etag, func() ([]byte, error) {
			v, err := build()
			if err != nil {
				return nil, err
			}
			return marshalBody(v, pretty)
		})
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, v1.CodeInternal, "building response failed", err.Error())
			return
		}
		if version() == before {
			h.Set("ETag", etag)
			break
		}
		if attempt >= 1 {
			// Generations are moving faster than builds: serve the data,
			// skip the validator. One retry can buy a validator; more just
			// multiplies the merge+marshal cost in exactly the hot regime.
			break
		}
	}
	s.writeBody(w, r, http.StatusOK, body)
}

// writeJSON marshals and sends an uncached response.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any, pretty bool) {
	body, err := marshalBody(v, pretty)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, v1.CodeInternal, "encoding response failed", err.Error())
		return
	}
	s.writeBody(w, r, status, body)
}

// writeBody sends a marshaled JSON body, gzip-compressed when the
// client accepts it and the body is big enough to bother. Every path
// that could compress declares Vary, so a shared cache never replays
// gzip bytes to a client that did not ask for them.
func (s *Server) writeBody(w http.ResponseWriter, r *http.Request, status int, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Vary", "Accept-Encoding")
	compress := len(body) >= gzipMinBytes && acceptsGzip(r)
	if r.Method == http.MethodHead {
		// Mirror the headers the matching GET would send (RFC 9110):
		// gzip GETs stream chunked with no Content-Length.
		if compress {
			h.Set("Content-Encoding", "gzip")
		} else {
			h.Set("Content-Length", strconv.Itoa(len(body)))
		}
		w.WriteHeader(status)
		return
	}
	if compress {
		h.Set("Content-Encoding", "gzip")
		w.WriteHeader(status)
		gz := gzipPool.Get().(*gzip.Writer)
		gz.Reset(w)
		_, werr := gz.Write(body)
		if cerr := gz.Close(); werr == nil {
			werr = cerr
		}
		gzipPool.Put(gz)
		if werr != nil {
			s.errorf("gzip response for %s: %v", r.URL.Path, werr)
		}
		return
	}
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		s.errorf("response for %s: %v", r.URL.Path, err)
	}
}

// writeError sends the structured error envelope every v1 failure path
// uses.
func (s *Server) writeError(w http.ResponseWriter, status int, code, message, detail string) {
	body, err := marshalBody(v1.ErrorResponse{Error: &v1.Error{Code: code, Message: message, Detail: detail}}, false)
	if err != nil { // cannot happen: the envelope always marshals
		body = []byte(`{"error":{"code":"internal","message":"encoding error envelope failed"}}` + "\n")
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Content-Type-Options", "nosniff")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		s.errorf("error envelope for status %d: %v", status, err)
	}
}

// marshalBody renders compact JSON (the default) or two-space
// indentation under ?pretty=1, both newline-terminated like
// json.Encoder output.
func marshalBody(v any, pretty bool) ([]byte, error) {
	var (
		b   []byte
		err error
	)
	if pretty {
		b, err = json.MarshalIndent(v, "", "  ")
	} else {
		b, err = json.Marshal(v)
	}
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// acceptsGzip reports whether the client advertises gzip support. A
// qvalue of 0 is an explicit refusal (RFC 9110 §12.4.2), not support.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		coding, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(coding) != "gzip" {
			continue
		}
		for _, p := range strings.Split(params, ";") {
			k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
			if ok && strings.EqualFold(strings.TrimSpace(k), "q") {
				if q, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil && q == 0 {
					return false
				}
			}
		}
		return true
	}
	return false
}
