package api

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	v1 "cwatrace/internal/api/v1"
	"cwatrace/internal/streaming"
	"cwatrace/internal/tier"
)

// fakeFanout is a scripted Fanout for exercising the handler contract
// without a fleet.
type fakeFanout struct {
	shards  int
	res     FanResult
	stats   FanStats
	missing []ShardError
}

func (f *fakeFanout) NumShards() int { return f.shards }
func (f *fakeFanout) Nonce() uint64  { return 42 }
func (f *fakeFanout) Snapshot(context.Context) (*FanResult, error) {
	r := f.res
	return &r, nil
}
func (f *fakeFanout) Query(context.Context, time.Time, time.Time, tier.Resolution) (*FanResult, error) {
	r := f.res
	return &r, nil
}
func (f *fakeFanout) Stats(context.Context) (*FanStats, error) {
	s := f.stats
	return &s, nil
}
func (f *fakeFanout) Health(context.Context) []ShardError { return f.missing }

func fanServer(t *testing.T, f *fakeFanout) *Server {
	t.Helper()
	s, err := New(Config{Fanout: f})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fanGet(t *testing.T, s *Server, url string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func emptySnap() *streaming.Snapshot {
	return streaming.New(streaming.Config{WindowHours: 8}).Snapshot()
}

// TestFanoutUnvalidatedServesWithoutETag pins the honesty rule for a
// complete-but-unvalidatable gather (a shard answered without an ETag):
// the body is served as 200, but with no validator — a composite over
// missing shard tags could collide across states.
func TestFanoutUnvalidatedServesWithoutETag(t *testing.T) {
	f := &fakeFanout{shards: 2, res: FanResult{Snapshot: emptySnap(), Version: 7, Validated: false}}
	s := fanServer(t, f)
	w := fanGet(t, s, "/api/v1/snapshot", nil)
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	if etag := w.Header().Get("ETag"); etag != "" {
		t.Fatalf("unvalidated fan-out carries ETag %q", etag)
	}
}

// TestFanoutDegradedEnvelope pins the wire shape of a partial response:
// 206, no-store, no ETag, degraded marker naming shard and node.
func TestFanoutDegradedEnvelope(t *testing.T) {
	f := &fakeFanout{shards: 3, res: FanResult{
		Snapshot: emptySnap(),
		Missing:  []ShardError{{Shard: 2, Node: "host2:8055", Err: "connection refused"}},
	}}
	s := fanServer(t, f)
	w := fanGet(t, s, "/api/v1/snapshot", nil)
	if w.Code != 206 || w.Header().Get("Cache-Control") != "no-store" || w.Header().Get("ETag") != "" {
		t.Fatalf("degraded response: %d %q %q", w.Code, w.Header().Get("Cache-Control"), w.Header().Get("ETag"))
	}
	var snap v1.Snapshot
	if err := json.NewDecoder(w.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	d := snap.Degraded
	if d == nil || len(d.MissingShards) != 1 || d.MissingShards[0] != 2 ||
		len(d.Nodes) != 1 || d.Nodes[0] != "host2:8055" || d.Detail != "connection refused" {
		t.Fatalf("degraded marker: %+v", d)
	}
}

// TestFanoutAllDownIsUnavailable: no shard at all is an explicit 503
// error envelope, never an empty 200.
func TestFanoutAllDownIsUnavailable(t *testing.T) {
	f := &fakeFanout{shards: 2, res: FanResult{
		Missing: []ShardError{{Shard: 0, Node: "a", Err: "x"}, {Shard: 1, Node: "b", Err: "y"}},
	}}
	s := fanServer(t, f)
	w := fanGet(t, s, "/api/v1/query", nil)
	var env v1.ErrorResponse
	if err := json.NewDecoder(w.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if w.Code != 503 || env.Error == nil || env.Error.Code != v1.CodeUnavailable {
		t.Fatalf("all-down response: %d %+v", w.Code, env.Error)
	}
}

// TestFanoutValidatedRoundTrip pins the composite-validator path: a
// validated gather serves a strong ETag and a bodyless 304 on
// If-None-Match.
func TestFanoutValidatedRoundTrip(t *testing.T) {
	f := &fakeFanout{shards: 2, res: FanResult{Snapshot: emptySnap(), Version: 99, Validated: true}}
	s := fanServer(t, f)
	w := fanGet(t, s, "/api/v1/snapshot", nil)
	etag := w.Header().Get("ETag")
	if w.Code != 200 || etag == "" || w.Header().Get("Cache-Control") != "no-cache" {
		t.Fatalf("validated response: %d %q %q", w.Code, etag, w.Header().Get("Cache-Control"))
	}
	w = fanGet(t, s, "/api/v1/snapshot", map[string]string{"If-None-Match": etag})
	if w.Code != 304 || w.Body.Len() != 0 {
		t.Fatalf("revalidation: %d with %d body bytes", w.Code, w.Body.Len())
	}
	// A version bump invalidates.
	f.res.Version = 100
	w = fanGet(t, s, "/api/v1/snapshot", map[string]string{"If-None-Match": etag})
	if w.Code != 200 || w.Header().Get("ETag") == etag {
		t.Fatalf("post-bump revalidation: %d %q", w.Code, w.Header().Get("ETag"))
	}
}

// TestFanoutHealthStates walks the router health ladder: ok, degraded
// (200), all-down degraded (503), draining (503, trumps the fleet).
func TestFanoutHealthStates(t *testing.T) {
	f := &fakeFanout{shards: 2}
	s := fanServer(t, f)

	check := func(wantCode int, wantStatus string) {
		t.Helper()
		w := fanGet(t, s, "/api/v1/health", nil)
		var h v1.HealthResponse
		if err := json.NewDecoder(w.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		if w.Code != wantCode || h.Status != wantStatus {
			t.Fatalf("health = %d %q, want %d %q", w.Code, h.Status, wantCode, wantStatus)
		}
	}
	check(200, v1.StatusOK)
	f.missing = []ShardError{{Shard: 1, Node: "b", Err: "x"}}
	check(200, v1.StatusDegraded)
	f.missing = append(f.missing, ShardError{Shard: 0, Node: "a", Err: "y"})
	check(503, v1.StatusDegraded)
	s.SetDraining(true)
	check(503, v1.StatusDraining)
}

// TestFanoutLegacyEndpointsGone: a router has no legacy body sources;
// the deprecated aliases answer with a pointer to the v1 surface.
func TestFanoutLegacyEndpointsGone(t *testing.T) {
	f := &fakeFanout{shards: 1, res: FanResult{Snapshot: emptySnap(), Validated: true}}
	s := fanServer(t, f)
	w := fanGet(t, s, "/snapshot", nil)
	if w.Code != 404 {
		t.Fatalf("legacy /snapshot on a router: %d", w.Code)
	}
	body, _ := io.ReadAll(w.Body)
	if len(body) == 0 {
		t.Fatal("legacy 404 should explain where to go")
	}
}
