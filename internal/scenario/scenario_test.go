package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"cwatrace/internal/adoption"
	"cwatrace/internal/entime"
	"cwatrace/internal/sim"
)

// tinyConfig matches the experiments-package test sizing: very coarse
// scale, three days around the release.
func tinyConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Scale = 40000
	cfg.End = cfg.Start.AddDate(0, 0, 3)
	return cfg
}

func TestCatalogShipsAndApplies(t *testing.T) {
	specs := Catalog()
	if len(specs) < 8 {
		t.Fatalf("catalog has %d scenarios, want >= 8", len(specs))
	}
	base := sim.DefaultConfig()
	for _, sp := range specs {
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: %v", sp.Name, err)
		}
		if _, err := sp.Apply(base); err != nil {
			t.Errorf("%s: apply: %v", sp.Name, err)
		}
		if sp.Summary == "" {
			t.Errorf("%s: catalog scenarios need a summary", sp.Name)
		}
	}
}

func TestUnknownScenarioErrors(t *testing.T) {
	_, err := Get("no-such-scenario")
	if err == nil {
		t.Fatal("unknown scenario must error")
	}
	if !strings.Contains(err.Error(), Baseline) {
		t.Fatalf("error should list known scenarios, got: %v", err)
	}
}

func TestEmptySpecIsIdentity(t *testing.T) {
	base := tinyConfig()
	got, err := Spec{Name: "identity"}.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, base) {
		t.Fatalf("empty spec must return the base config unchanged:\n got %+v\nbase %+v", got, base)
	}
}

// TestPaperBaselineByteForByte is the acceptance gate: the paper-baseline
// scenario must reproduce the direct experiment pipeline byte for byte at
// a fixed seed.
func TestPaperBaselineByteForByte(t *testing.T) {
	base := tinyConfig()
	sp, err := Get(Baseline)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sp.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, base) {
		t.Fatal("paper-baseline must not mutate the base configuration")
	}
	direct, err := sim.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Records, viaSpec.Records) {
		t.Fatal("paper-baseline trace differs from the direct pipeline")
	}
	if !reflect.DeepEqual(direct.Stats, viaSpec.Stats) {
		t.Fatalf("paper-baseline stats differ:\n direct %+v\n spec   %+v", direct.Stats, viaSpec.Stats)
	}
}

func TestValidationRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{},                          // no name
		{Name: "Has Spaces"},        // not kebab-case
		{Name: "x", Scale: -1},      // negative scale
		{Name: "x", SampleRate: -4}, // negative sampling
		{Name: "x", ReleaseShiftDays: -1},
		{Name: "x", ReleaseShiftDays: 90},
		{Name: "x", AdoptionFactor: -0.5},
		{Name: "x", Rt: f(-1)},
		{Name: "x", BackgroundBugShare: f(1.5)},
		{Name: "x", UploadRampPerDay: f(0)},
		{Name: "x", NoiseFraction: f(2)},
		{Name: "x", CDNEdges: -2},
		{Name: "x", Outbreaks: []OutbreakSpec{{District: "", Date: "2020-06-20", Infections: 10}}},
		{Name: "x", Outbreaks: []OutbreakSpec{{District: "NW-000", Date: "June 20", Infections: 10}}},
		{Name: "x", Outbreaks: []OutbreakSpec{{District: "NW-000", Date: "2020-06-20", Infections: 0}}},
		{Name: "x", AttentionPulses: []PulseSpec{{Date: "2020-06-20", Amplitude: 0}}},
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("case %d (%+v): expected validation error", i, sp)
		}
	}
}

func TestApplyRejectsOutOfWindowOutbreak(t *testing.T) {
	sp := Spec{Name: "x", Outbreaks: []OutbreakSpec{
		{District: "NW-000", Date: "2021-03-01", Infections: 100},
	}}
	if err := sp.Validate(); err != nil {
		t.Fatalf("spec alone is valid: %v", err)
	}
	if _, err := sp.Apply(sim.DefaultConfig()); err == nil {
		t.Fatal("outbreak outside the epidemic window must fail at Apply")
	}
}

func TestExtendedWindowAcceptsLateOutbreak(t *testing.T) {
	// The window extension must take effect before outbreak dates are
	// checked: July 18 is outside the default 45-day epidemic coverage
	// but inside the extended capture window.
	sp := Spec{
		Name:       "late-outbreak",
		ExtendDays: 25,
		Outbreaks: []OutbreakSpec{
			{District: "NW-000", Date: "2020-07-18", Infections: 100},
		},
	}
	cfg, err := sp.Apply(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ob := cfg.Epidemic.Outbreaks[len(cfg.Epidemic.Outbreaks)-1]
	if ob.Day >= cfg.Epidemic.Days {
		t.Fatalf("outbreak day %d not covered by %d epidemic days", ob.Day, cfg.Epidemic.Days)
	}
}

func TestApplyOverrides(t *testing.T) {
	base := sim.DefaultConfig()
	sp := Spec{
		Name:               "kitchen-sink",
		Scale:              4000,
		SeedFromName:       true,
		ExtendDays:         7,
		SampleRate:         256,
		CDNEdges:           2,
		CDNCacheTTL:        Duration(5 * time.Minute),
		AndroidShare:       f(0.5),
		BackgroundBugShare: f(0.1),
		Rt:                 f(1.2),
		Outbreaks: []OutbreakSpec{
			{District: "BY-000", Date: "2020-06-20", Infections: 250},
		},
	}
	cfg, err := sp.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scale != 4000 || cfg.Netflow.SampleRate != 256 || cfg.CDN.Edges != 2 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	if cfg.CDN.CacheTTL != 5*time.Minute {
		t.Fatalf("ttl = %v", cfg.CDN.CacheTTL)
	}
	if cfg.Device.AndroidShare != 0.5 || cfg.Device.BackgroundBugShare != 0.1 {
		t.Fatalf("device overrides not applied: %+v", cfg.Device)
	}
	if cfg.Epidemic.Rt != 1.2 {
		t.Fatalf("rt = %f", cfg.Epidemic.Rt)
	}
	if want := DeriveSeed(base.Seed, "kitchen-sink"); cfg.Seed != want {
		t.Fatalf("seed = %d, want derived %d", cfg.Seed, want)
	}
	if !cfg.End.Equal(base.End.AddDate(0, 0, 7)) {
		t.Fatalf("end = %v", cfg.End)
	}
	// The injected outbreak lands at the right day index and the base's
	// outbreak list is untouched (copy-on-write).
	n := len(base.Epidemic.Outbreaks)
	if len(cfg.Epidemic.Outbreaks) != n+1 {
		t.Fatalf("outbreaks = %d, want %d", len(cfg.Epidemic.Outbreaks), n+1)
	}
	ob := cfg.Epidemic.Outbreaks[n]
	wantDay := int(time.Date(2020, time.June, 20, 0, 0, 0, 0, entime.Berlin).Sub(cfg.Epidemic.Start) / (24 * time.Hour))
	if ob.Day != wantDay || ob.DurationDays != 1 {
		t.Fatalf("outbreak = %+v, want day %d, duration 1", ob, wantDay)
	}
	if len(base.Epidemic.Outbreaks) != n {
		t.Fatal("base outbreak list mutated")
	}
	// Epidemic coverage was extended with the window.
	if need := int(cfg.End.Sub(cfg.Epidemic.Start) / (24 * time.Hour)); cfg.Epidemic.Days < need {
		t.Fatalf("epidemic days %d < window need %d", cfg.Epidemic.Days, need)
	}
}

func TestAdoptionOverrides(t *testing.T) {
	base := sim.DefaultConfig()
	at := entime.StudyEnd

	slow, err := Spec{Name: "s", AdoptionFactor: 0.5}.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Curve == nil {
		t.Fatal("adoption factor must install a curve override")
	}
	direct, _ := Spec{Name: "d"}.Apply(base)
	if direct.Curve != nil {
		t.Fatal("identity spec must not install a curve")
	}
	got := slow.Curve.Cumulative(at)
	want := 0.5 * adoption.DefaultCurve().Cumulative(at)
	if diff := got - want; diff > 1 || diff < -1 {
		t.Fatalf("scaled cumulative = %f, want %f", got, want)
	}

	shift, err := Spec{Name: "late", ReleaseShiftDays: 3}.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if !shift.UploadGoLive.Equal(base.UploadGoLive.AddDate(0, 0, 3)) {
		t.Fatalf("upload go-live = %v", shift.UploadGoLive)
	}
	// Three days after the real release the shifted curve is still at the
	// real release's starting value.
	if got := shift.Curve.Cumulative(entime.AppRelease.Add(24 * time.Hour)); got != 0 {
		t.Fatalf("shifted curve already at %f one day after the real release", got)
	}
	if shift.Attention == nil {
		t.Fatal("release shift must move the release news pulse")
	}
	moved := false
	for _, p := range shift.Attention.Pulses {
		if p.At.Equal(entime.AppRelease.AddDate(0, 0, 3)) {
			moved = true
		}
		if p.At.Equal(entime.AppRelease) {
			t.Fatal("release pulse left at the original date")
		}
	}
	if !moved {
		t.Fatal("no pulse at the shifted release date")
	}
}

func TestDeriveSeedStableAndDistinct(t *testing.T) {
	a := DeriveSeed(20200616, "second-wave")
	b := DeriveSeed(20200616, "second-wave")
	c := DeriveSeed(20200616, "slow-adoption")
	d := DeriveSeed(1, "second-wave")
	if a != b {
		t.Fatal("derived seed must be deterministic")
	}
	if a == c || a == d {
		t.Fatal("derived seeds must differ across names and base seeds")
	}
}

func TestParseSpecStrict(t *testing.T) {
	good := `{"name": "from-json", "sample_rate": 64, "cdn_cache_ttl": "2m",
	          "outbreaks": [{"district": "NW-000", "date": "2020-06-20", "infections": 50}]}`
	sp, err := ParseSpec(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if sp.SampleRate != 64 || sp.CDNCacheTTL != Duration(2*time.Minute) {
		t.Fatalf("parsed: %+v", sp)
	}
	if _, err := sp.Apply(sim.DefaultConfig()); err != nil {
		t.Fatal(err)
	}

	if _, err := ParseSpec(strings.NewReader(`{"name": "x", "smaple_rate": 4}`)); err == nil {
		t.Fatal("unknown fields must be rejected")
	}
	if _, err := ParseSpec(strings.NewReader(`{"name": "x", "cdn_cache_ttl": "2 parsecs"}`)); err == nil {
		t.Fatal("bad durations must be rejected")
	}
	if _, err := ParseSpec(strings.NewReader(`{"name": "BAD NAME"}`)); err == nil {
		t.Fatal("parsed specs must be validated")
	}
}

func TestRunAllOrderAndBaselineDelta(t *testing.T) {
	base := tinyConfig()
	specs := []Spec{
		{Name: Baseline},
		{Name: "coarse", SampleRate: 1024},
	}
	rows, err := RunAll(base, specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Scenario != Baseline || rows[1].Scenario != "coarse" {
		t.Fatalf("order not preserved: %+v", rows)
	}
	if rows[0].KeptFlows == 0 {
		t.Fatal("baseline produced no flows")
	}
	if rows[1].KeptFlows >= rows[0].KeptFlows {
		t.Fatalf("1:1024 sampling must shrink the trace: %d vs %d",
			rows[1].KeptFlows, rows[0].KeptFlows)
	}
	out := RenderComparison(rows)
	if !strings.Contains(out, Baseline) || !strings.Contains(out, "Δbase") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	if err := Register(Spec{Name: Baseline}); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if err := Register(Spec{Name: "INVALID"}); err == nil {
		t.Fatal("invalid spec must not register")
	}
}
