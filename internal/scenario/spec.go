// Package scenario is the declarative what-if layer of the reproduction.
// A Spec is a named, data-driven description of one counterfactual
// configuration — adoption-curve overrides, epidemic and outbreak
// injections, CDN degradation, Netflow sampling rates, release-date
// shifts, device-mix changes — that maps onto sim.Config mutations via
// Apply. Zero-valued fields inherit the base configuration, so an empty
// Spec reproduces the baseline byte for byte.
//
// Specs are plain JSON-serializable structs: the shipped catalog
// (catalog.go) registers them in Go, and cmd/scenarios loads external
// ones from JSON files, so new workloads need data, not code. The
// experiments ablations (internal/experiments) are sweeps over generated
// specs, keeping every configuration path through one validated door.
package scenario

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"regexp"
	"time"

	"cwatrace/internal/adoption"
	"cwatrace/internal/centralized"
	"cwatrace/internal/entime"
	"cwatrace/internal/epidemic"
	"cwatrace/internal/sim"
)

// Duration wraps time.Duration with Go duration-string JSON encoding
// ("30m", "2h15m"), so specs stay readable as data.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler; it accepts Go duration
// strings and (for convenience) raw nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("scenario: duration must be a string like \"30m\"")
	}
	*d = Duration(n)
	return nil
}

// OutbreakSpec injects one local superspreading event, addressed by
// district ID and calendar date (Berlin time) instead of the epidemic
// package's internal day indices.
type OutbreakSpec struct {
	// District is the geo district ID, e.g. "NW-000".
	District string `json:"district"`
	// Date is the first day of the event, "2006-01-02" format.
	Date string `json:"date"`
	// Infections is how many people the event exposes in total.
	Infections float64 `json:"infections"`
	// DurationDays spreads the exposures over this many days (default 1).
	DurationDays int `json:"duration_days,omitempty"`
}

// PulseSpec adds one media-attention pulse (national news coverage).
type PulseSpec struct {
	// Date is the day of the coverage peak, "2006-01-02" format.
	Date string `json:"date"`
	// Amplitude is the attention multiple added at the peak.
	Amplitude float64 `json:"amplitude"`
	// DecayDays is the exponential decay constant (default 2).
	DecayDays float64 `json:"decay_days,omitempty"`
}

// Spec is one declarative scenario. Every field except Name is optional;
// zero values inherit the base sim.Config passed to Apply.
type Spec struct {
	// Name identifies the scenario (kebab-case).
	Name string `json:"name"`
	// Summary is the one-line catalog description.
	Summary string `json:"summary,omitempty"`

	// Scale overrides how many real users one simulated device stands for.
	Scale int `json:"scale,omitempty"`
	// Seed pins the simulation seed. When 0 and SeedFromName is false the
	// base seed is kept.
	Seed int64 `json:"seed,omitempty"`
	// SeedFromName derives a deterministic per-scenario seed from the base
	// seed and the scenario name (DeriveSeed), decorrelating scenarios
	// from the baseline without hiding a magic number in the spec.
	SeedFromName bool `json:"seed_from_name,omitempty"`
	// ExtendDays lengthens (or, negative, shortens) the capture window.
	ExtendDays int `json:"extend_days,omitempty"`

	// ReleaseShiftDays delays the app release: the download curve and the
	// verification-pipeline go-live move together. Only delays (>= 0) are
	// supported; the simulator clamps installs to the real release instant.
	ReleaseShiftDays int `json:"release_shift_days,omitempty"`
	// AdoptionFactor multiplies the national download curve (0 = inherit,
	// 0.5 = half of Germany's actual uptake).
	AdoptionFactor float64 `json:"adoption_factor,omitempty"`
	// AttentionPulses appends media-attention events.
	AttentionPulses []PulseSpec `json:"attention_pulses,omitempty"`

	// Rt overrides the background reproduction number.
	Rt *float64 `json:"rt,omitempty"`
	// ReportingRate overrides the infection->positive-test share.
	ReportingRate *float64 `json:"reporting_rate,omitempty"`
	// Outbreaks appends local superspreading events.
	Outbreaks []OutbreakSpec `json:"outbreaks,omitempty"`

	// AndroidShare overrides the device OS mix.
	AndroidShare *float64 `json:"android_share,omitempty"`
	// BackgroundBugShare overrides the share of devices whose background
	// sync is broken by OS energy saving.
	BackgroundBugShare *float64 `json:"background_bug_share,omitempty"`
	// UploadConsent overrides the share of positive-tested users who share
	// their keys.
	UploadConsent *float64 `json:"upload_consent,omitempty"`
	// UploadRampPerDay overrides the verification-pipeline ramp.
	UploadRampPerDay *float64 `json:"upload_ramp_per_day,omitempty"`

	// SampleRate overrides the router packet sampling rate (1:N).
	SampleRate int `json:"sample_rate,omitempty"`
	// FlowCacheEntries overrides the router flow-cache capacity.
	FlowCacheEntries int `json:"flow_cache_entries,omitempty"`

	// CDNEdges overrides the number of edge servers per service.
	CDNEdges int `json:"cdn_edges,omitempty"`
	// CDNCacheTTL overrides how long edges serve distribution objects from
	// cache.
	CDNCacheTTL Duration `json:"cdn_cache_ttl,omitempty"`

	// WebVisitorsPerHourPer100k overrides the general-population website
	// visit rate.
	WebVisitorsPerHourPer100k *float64 `json:"web_visitors_per_hour_per_100k,omitempty"`
	// NoiseFraction overrides the filter-exercising noise share.
	NoiseFraction *float64 `json:"noise_fraction,omitempty"`
}

var nameRE = regexp.MustCompile(`^[a-z0-9]+(-[a-z0-9]+)*$`)

// parseDate reads a "2006-01-02" date in Berlin time.
func parseDate(s string) (time.Time, error) {
	t, err := time.ParseInLocation("2006-01-02", s, entime.Berlin)
	if err != nil {
		return time.Time{}, fmt.Errorf("scenario: bad date %q (want YYYY-MM-DD): %w", s, err)
	}
	return t, nil
}

// Validate reports spec errors: malformed names, out-of-range overrides,
// unparseable dates. It validates the spec in isolation; Apply additionally
// validates the resulting sim.Config.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if !nameRE.MatchString(s.Name) {
		return fmt.Errorf("scenario %s: name must be kebab-case ([a-z0-9-])", s.Name)
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %s: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Scale < 0 {
		return fail("scale %d must be >= 0", s.Scale)
	}
	if s.ReleaseShiftDays < 0 || s.ReleaseShiftDays > 30 {
		return fail("release_shift_days %d out of [0,30]", s.ReleaseShiftDays)
	}
	if s.AdoptionFactor < 0 {
		return fail("adoption_factor %f must be >= 0", s.AdoptionFactor)
	}
	for _, p := range s.AttentionPulses {
		if _, err := parseDate(p.Date); err != nil {
			return fail("attention pulse: %v", err)
		}
		if p.Amplitude <= 0 {
			return fail("attention pulse amplitude %f must be > 0", p.Amplitude)
		}
		if p.DecayDays < 0 {
			return fail("attention pulse decay_days %f must be >= 0", p.DecayDays)
		}
	}
	if s.Rt != nil && *s.Rt < 0 {
		return fail("rt %f must be >= 0", *s.Rt)
	}
	for name, v := range map[string]*float64{
		"reporting_rate":       s.ReportingRate,
		"android_share":        s.AndroidShare,
		"background_bug_share": s.BackgroundBugShare,
		"upload_consent":       s.UploadConsent,
	} {
		if v != nil && (*v < 0 || *v > 1) {
			return fail("%s %f out of [0,1]", name, *v)
		}
	}
	if s.UploadRampPerDay != nil && (*s.UploadRampPerDay <= 0 || *s.UploadRampPerDay > 1) {
		return fail("upload_ramp_per_day %f out of (0,1]", *s.UploadRampPerDay)
	}
	for _, o := range s.Outbreaks {
		if o.District == "" {
			return fail("outbreak needs a district ID")
		}
		if _, err := parseDate(o.Date); err != nil {
			return fail("outbreak: %v", err)
		}
		if o.Infections <= 0 {
			return fail("outbreak infections %f must be > 0", o.Infections)
		}
		if o.DurationDays < 0 {
			return fail("outbreak duration_days %d must be >= 0", o.DurationDays)
		}
	}
	if s.SampleRate < 0 {
		return fail("sample_rate %d must be >= 0", s.SampleRate)
	}
	if s.FlowCacheEntries < 0 {
		return fail("flow_cache_entries %d must be >= 0", s.FlowCacheEntries)
	}
	if s.CDNEdges < 0 {
		return fail("cdn_edges %d must be >= 0", s.CDNEdges)
	}
	if s.CDNCacheTTL < 0 {
		return fail("cdn_cache_ttl must be >= 0")
	}
	if s.WebVisitorsPerHourPer100k != nil && *s.WebVisitorsPerHourPer100k < 0 {
		return fail("web_visitors_per_hour_per_100k must be >= 0")
	}
	if s.NoiseFraction != nil && (*s.NoiseFraction < 0 || *s.NoiseFraction > 1) {
		return fail("noise_fraction %f out of [0,1]", *s.NoiseFraction)
	}
	return nil
}

// DeriveSeed mixes a base seed with a scenario name into a deterministic
// per-scenario seed (FNV-1a over the name, splitmix64 finalizer), so
// sweeps fan out with decorrelated but reproducible randomness.
func DeriveSeed(base int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	x := uint64(base) ^ h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Apply maps the spec onto a base configuration. Untouched fields pass
// through unchanged (an all-zero spec returns base exactly); the result is
// re-validated, so a spec can never produce an unrunnable configuration.
func (s Spec) Apply(base sim.Config) (sim.Config, error) {
	if err := s.Validate(); err != nil {
		return sim.Config{}, err
	}
	out := base

	if s.Scale > 0 {
		out.Scale = s.Scale
	}
	switch {
	case s.Seed != 0:
		out.Seed = s.Seed
	case s.SeedFromName:
		out.Seed = DeriveSeed(base.Seed, s.Name)
	}
	if s.ExtendDays != 0 {
		out.End = base.End.AddDate(0, 0, s.ExtendDays)
	}

	// Adoption: release shift and uptake factor compose onto whatever
	// curve the base carries (nil = the calibrated default).
	if s.ReleaseShiftDays > 0 || (s.AdoptionFactor > 0 && s.AdoptionFactor != 1) {
		curve := base.Curve
		if curve == nil {
			curve = adoption.DefaultCurve()
		}
		if s.ReleaseShiftDays > 0 {
			shift := time.Duration(s.ReleaseShiftDays) * 24 * time.Hour
			curve = curve.Shifted(shift)
			out.UploadGoLive = base.UploadGoLive.Add(shift)
		}
		if s.AdoptionFactor > 0 && s.AdoptionFactor != 1 {
			curve = curve.Scaled(s.AdoptionFactor)
		}
		out.Curve = curve
	}
	if len(s.AttentionPulses) > 0 || s.ReleaseShiftDays > 0 {
		att := adoption.DefaultAttention()
		if base.Attention != nil {
			att = *base.Attention
		}
		pulses := make([]adoption.MediaPulse, len(att.Pulses), len(att.Pulses)+len(s.AttentionPulses))
		copy(pulses, att.Pulses)
		if s.ReleaseShiftDays > 0 {
			// The release-coverage pulse moves with the launch; the
			// pre-launch announcement buzz and outbreak news keep their
			// real-world dates.
			shift := time.Duration(s.ReleaseShiftDays) * 24 * time.Hour
			for i := range pulses {
				if pulses[i].At.Equal(entime.AppRelease) {
					pulses[i].At = pulses[i].At.Add(shift)
				}
			}
		}
		for _, p := range s.AttentionPulses {
			at, _ := parseDate(p.Date) // validated above
			decay := p.DecayDays
			if decay == 0 {
				decay = 2
			}
			pulses = append(pulses, adoption.MediaPulse{
				At:        at.Add(12 * time.Hour),
				Amplitude: p.Amplitude,
				DecayDays: decay,
			})
		}
		att.Pulses = pulses
		out.Attention = &att
	}

	if s.Rt != nil {
		out.Epidemic.Rt = *s.Rt
	}
	if s.ReportingRate != nil {
		out.Epidemic.ReportingRate = *s.ReportingRate
	}
	// Defaulting: a longer capture window silently gets the epidemic
	// coverage it needs. This runs before outbreak injection so extended
	// windows accept outbreaks in their extra days.
	if need := int(out.End.Sub(out.Epidemic.Start) / (24 * time.Hour)); out.Epidemic.Days < need {
		out.Epidemic.Days = need
	}
	if len(s.Outbreaks) > 0 {
		obs := make([]epidemic.Outbreak, len(base.Epidemic.Outbreaks), len(base.Epidemic.Outbreaks)+len(s.Outbreaks))
		copy(obs, base.Epidemic.Outbreaks)
		for _, o := range s.Outbreaks {
			at, _ := parseDate(o.Date) // validated above
			day := int(at.Sub(out.Epidemic.Start) / (24 * time.Hour))
			if day < 0 || day >= out.Epidemic.Days {
				return sim.Config{}, fmt.Errorf("scenario %s: outbreak date %s outside the epidemic window", s.Name, o.Date)
			}
			dur := o.DurationDays
			if dur == 0 {
				dur = 1
			}
			obs = append(obs, epidemic.Outbreak{
				DistrictID:   o.District,
				Day:          day,
				Infections:   o.Infections,
				DurationDays: dur,
			})
		}
		out.Epidemic.Outbreaks = obs
	}

	if s.AndroidShare != nil {
		out.Device.AndroidShare = *s.AndroidShare
	}
	if s.BackgroundBugShare != nil {
		out.Device.BackgroundBugShare = *s.BackgroundBugShare
	}
	if s.UploadConsent != nil {
		out.Device.UploadConsent = *s.UploadConsent
	}
	if s.UploadRampPerDay != nil {
		out.UploadRampPerDay = *s.UploadRampPerDay
	}

	if s.SampleRate > 0 {
		out.Netflow.SampleRate = s.SampleRate
	}
	if s.FlowCacheEntries > 0 {
		out.Netflow.MaxEntries = s.FlowCacheEntries
	}
	if s.CDNEdges > 0 {
		out.CDN.Edges = s.CDNEdges
	}
	if s.CDNCacheTTL > 0 {
		out.CDN.CacheTTL = time.Duration(s.CDNCacheTTL)
	}
	if s.WebVisitorsPerHourPer100k != nil {
		out.WebVisitorsPerHourPer100k = *s.WebVisitorsPerHourPer100k
	}
	if s.NoiseFraction != nil {
		out.NoiseFraction = *s.NoiseFraction
	}

	if err := out.Validate(); err != nil {
		return sim.Config{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return out, nil
}

// ParseSpec reads one JSON spec, rejecting unknown fields, and validates
// it. This is the cmd/scenarios entry point for user-supplied scenarios.
func ParseSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// CentralizedSpec is the declarative form of the A2 architecture
// comparison workload (centralized.ScenarioConfig): zero fields default to
// the canonical comparison the paper-context ablation uses.
type CentralizedSpec struct {
	Users            int   `json:"users,omitempty"`
	Days             int   `json:"days,omitempty"`
	EncountersPerDay int   `json:"encounters_per_day,omitempty"`
	PositivesPerDay  int   `json:"positives_per_day,omitempty"`
	KeysPerUpload    int   `json:"keys_per_upload,omitempty"`
	Seed             int64 `json:"seed,omitempty"`
}

// Config applies defaults and returns the runnable workload.
func (c CentralizedSpec) Config() centralized.ScenarioConfig {
	out := centralized.ScenarioConfig{
		Users:            5000,
		Days:             10,
		EncountersPerDay: 5,
		PositivesPerDay:  3,
		KeysPerUpload:    10,
		Seed:             42,
	}
	if c.Users > 0 {
		out.Users = c.Users
	}
	if c.Days > 0 {
		out.Days = c.Days
	}
	if c.EncountersPerDay > 0 {
		out.EncountersPerDay = c.EncountersPerDay
	}
	if c.PositivesPerDay > 0 {
		out.PositivesPerDay = c.PositivesPerDay
	}
	if c.KeysPerUpload > 0 {
		out.KeysPerUpload = c.KeysPerUpload
	}
	if c.Seed != 0 {
		out.Seed = c.Seed
	}
	return out
}
