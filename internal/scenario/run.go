package scenario

import (
	"fmt"
	"runtime"
	"strings"

	"cwatrace/internal/core"
	"cwatrace/internal/sim"
	"cwatrace/internal/workgroup"
)

// SweepWorkers bounds the concurrent simulations of a parameter or
// scenario sweep: each point is itself an internally parallel sim.Run, so
// running every point at once would oversubscribe the machine and spike
// memory. Shared by the experiments ablations and cmd/scenarios.
func SweepWorkers() int {
	n := runtime.NumCPU() / 2
	if n < 1 {
		n = 1
	}
	if n > 4 {
		n = 4
	}
	return n
}

// Metrics are the key per-scenario outcomes the comparison table reports:
// the headline numbers of the paper's figures and tables, so scenario
// deltas read directly against the reproduction's baseline.
type Metrics struct {
	// Scenario is the spec name.
	Scenario string
	// Seed is the effective simulation seed after derivation.
	Seed int64
	// Devices is the number of simulated phones; InstalledByEnd of them
	// installed inside the capture window.
	Devices, InstalledByEnd int
	// RawRecords is the exported flow-record count before filtering;
	// KeptFlows is after the paper's filter (T1).
	RawRecords, KeptFlows int
	// ReleaseDayFlowRatio is the F2 headline (paper: 7.5x).
	ReleaseDayFlowRatio float64
	// MedianPresence / P75Presence are the T2 prefix-persistence
	// quantiles (paper: 0.67 / 0.80).
	MedianPresence, P75Presence float64
	// Uploads counts real diagnosis-key submissions (T6 context).
	Uploads int
	// FirstKeysDay is the first day with published keys (paper: Jun 23).
	FirstKeysDay string
	// Syncs counts daily key-download rounds.
	Syncs int
	// WebVisits counts website exchanges.
	WebVisits int
	// CacheHitRate is the CDN edge hit fraction.
	CacheHitRate float64
}

// Run applies one spec to the base configuration, runs the simulation and
// the paper's measurement pipeline, and extracts the comparison metrics.
func Run(base sim.Config, sp Spec) (Metrics, error) {
	cfg, err := sp.Apply(base)
	if err != nil {
		return Metrics{}, err
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return Metrics{}, fmt.Errorf("scenario %s: %w", sp.Name, err)
	}
	kept, _ := core.ApplyFilter(res.Records, core.DefaultFilter())

	m := Metrics{
		Scenario:       sp.Name,
		Seed:           cfg.Seed,
		Devices:        res.Stats.Devices,
		InstalledByEnd: res.Stats.InstalledByEnd,
		RawRecords:     res.Stats.Records,
		KeptFlows:      len(kept),
		Uploads:        res.Stats.Uploads,
		Syncs:          res.Stats.Syncs,
		WebVisits:      res.Stats.WebVisits,
	}
	if fig2, err := core.Figure2(kept, res.Curve); err == nil {
		m.ReleaseDayFlowRatio = fig2.ReleaseDayFlowRatio
	}
	pers := core.PrefixPersistence(kept)
	m.MedianPresence = pers.MedianFraction
	m.P75Presence = pers.P75Fraction
	if days := res.Backend.AvailableDays(); len(days) > 0 {
		m.FirstKeysDay = days[0]
	}
	if total := res.Stats.CacheHits + res.Stats.CacheMisses; total > 0 {
		m.CacheHitRate = float64(res.Stats.CacheHits) / float64(total)
	}
	return m, nil
}

// RunAll fans the scenarios out on a bounded workgroup pool — each point
// is itself an internally parallel sim.Run, so the sweep reuses the
// ablation sizing — and returns metrics in input order regardless of
// completion order. Seeds are fixed per scenario by Apply, so the same
// base configuration always yields the identical metrics set.
func RunAll(base sim.Config, specs []Spec, workers int) ([]Metrics, error) {
	if workers < 1 {
		workers = 1
	}
	out := make([]Metrics, len(specs))
	g := workgroup.WithLimit(workers)
	for i, sp := range specs {
		i, sp := i, sp
		g.Go(func() error {
			m, err := Run(base, sp)
			if err != nil {
				return err
			}
			out[i] = m
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// delta formats a percentage difference against a baseline value.
func delta(v, base float64) string {
	if base == 0 {
		if v == 0 {
			return "    —"
		}
		return "  new"
	}
	return fmt.Sprintf("%+5.0f%%", 100*(v-base)/base)
}

// RenderComparison renders the metrics as a fixed-width table. When a row
// named Baseline ("paper-baseline") is present, kept-flow, upload and sync
// columns carry deltas against it; rows keep their input order.
func RenderComparison(rows []Metrics) string {
	var base *Metrics
	for i := range rows {
		if rows[i].Scenario == Baseline {
			base = &rows[i]
			break
		}
	}
	var sb strings.Builder
	sb.WriteString("scenario                  keptFlows     Δbase  rel-day×  p50/p75 pres  uploads     Δbase  firstKeys   syncs  webVisits  hit%\n")
	for _, m := range rows {
		dKept, dUp := "      ", "      "
		if base != nil {
			dKept = delta(float64(m.KeptFlows), float64(base.KeptFlows))
			dUp = delta(float64(m.Uploads), float64(base.Uploads))
		}
		first := m.FirstKeysDay
		if first == "" {
			first = "—"
		}
		fmt.Fprintf(&sb, "%-25s %9d  %s  %8.1f  %5.2f /%5.2f  %7d  %s  %-10s %6d  %9d  %4.0f\n",
			m.Scenario, m.KeptFlows, dKept, m.ReleaseDayFlowRatio,
			m.MedianPresence, m.P75Presence, m.Uploads, dUp,
			first, m.Syncs, m.WebVisits, 100*m.CacheHitRate)
	}
	if base != nil {
		sb.WriteString("(Δbase columns are relative to paper-baseline)\n")
	}
	return sb.String()
}

// RenderCatalog renders the registry as a name/summary listing for the
// CLI and the README's scenario table.
func RenderCatalog(specs []Spec) string {
	var sb strings.Builder
	for _, s := range specs {
		fmt.Fprintf(&sb, "%-25s %s\n", s.Name, s.Summary)
	}
	return sb.String()
}
