package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// registry holds the named scenarios in registration order, so catalog
// listings and comparison tables stay deterministic.
var registry = struct {
	sync.RWMutex
	byName map[string]Spec
	order  []string
}{byName: make(map[string]Spec)}

// Register adds a scenario to the registry. It rejects invalid specs and
// duplicate names.
func Register(s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[s.Name]; dup {
		return fmt.Errorf("scenario: %q already registered", s.Name)
	}
	registry.byName[s.Name] = s
	registry.order = append(registry.order, s.Name)
	return nil
}

// Get returns a registered scenario. Unknown names error with the
// available catalog, so CLI typos are self-explaining.
func Get(name string) (Spec, error) {
	registry.RLock()
	defer registry.RUnlock()
	s, ok := registry.byName[name]
	if !ok {
		known := make([]string, len(registry.order))
		copy(known, registry.order)
		sort.Strings(known)
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q (known: %s)", name, strings.Join(known, ", "))
	}
	return s, nil
}

// Catalog returns the registered scenarios in registration order.
func Catalog() []Spec {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Spec, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.byName[name])
	}
	return out
}

// Names returns the registered scenario names in registration order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, len(registry.order))
	copy(out, registry.order)
	return out
}

// Baseline is the scenario every comparison table is diffed against.
const Baseline = "paper-baseline"

func f(v float64) *float64 { return &v }

// The shipped catalog. paper-baseline is deliberately the empty spec: it
// inherits the base configuration untouched, which is what makes it
// byte-identical to the PR-1 experiment pipeline at the same seed.
var catalog = []Spec{
	{
		Name:    Baseline,
		Summary: "the paper's June 15-26 study window, calibrated defaults, untouched",
	},
	{
		Name:         "second-wave",
		Summary:      "counterfactual epidemic resurgence: Rt 1.35 instead of 0.85, one extra week",
		SeedFromName: true,
		Rt:           f(1.35),
		ExtendDays:   7,
	},
	{
		Name:         "regional-lockdown-nrw",
		Summary:      "a Gütersloh-scale outbreak cluster across four NRW districts plus lockdown news coverage",
		SeedFromName: true,
		Outbreaks: []OutbreakSpec{
			{District: "NW-002", Date: "2020-06-19", Infections: 1200, DurationDays: 6},
			{District: "NW-003", Date: "2020-06-20", Infections: 800, DurationDays: 5},
			{District: "NW-004", Date: "2020-06-20", Infections: 500, DurationDays: 5},
			{District: "NW-005", Date: "2020-06-21", Infections: 350, DurationDays: 4},
		},
		AttentionPulses: []PulseSpec{
			{Date: "2020-06-21", Amplitude: 3.0, DecayDays: 2.5},
		},
	},
	{
		Name:             "delayed-release",
		Summary:          "the app ships three days late; download curve, release news and upload go-live move together",
		SeedFromName:     true,
		ReleaseShiftDays: 3,
	},
	{
		Name:             "tek-upload-surge",
		Summary:          "verification pipeline at full throughput from day one, near-universal upload consent",
		SeedFromName:     true,
		UploadRampPerDay: f(1),
		UploadConsent:    f(0.95),
		ReportingRate:    f(0.9),
	},
	{
		Name:         "cdn-edge-outage",
		Summary:      "CDN degraded to a single edge per service with 2-minute cache TTL",
		SeedFromName: true,
		CDNEdges:     1,
		CDNCacheTTL:  Duration(2 * time.Minute),
	},
	{
		Name:         "coarse-sampling-1in1024",
		Summary:      "router packet sampling at 1:1024 instead of the partner ISP's 1:4",
		SeedFromName: true,
		SampleRate:   1024,
	},
	{
		Name:           "slow-adoption",
		Summary:        "Germany installs at 45% of the observed rate (weak launch coverage)",
		SeedFromName:   true,
		AdoptionFactor: 0.45,
	},
	{
		Name:               "background-bug-fixed",
		Summary:            "no energy-saving background restriction: every device syncs daily",
		SeedFromName:       true,
		BackgroundBugShare: f(0),
	},
	{
		Name:         "ios-majority",
		Summary:      "inverted device mix: 25% Android, 75% iOS",
		SeedFromName: true,
		AndroidShare: f(0.25),
	},
}

func init() {
	for _, s := range catalog {
		if err := Register(s); err != nil {
			panic("scenario: catalog: " + err.Error())
		}
	}
}

// DefaultCentralized is the canonical A2 architecture-comparison workload
// (all defaults); experiments.Centralized consumes it.
var DefaultCentralized = CentralizedSpec{}
