// Package workgroup is a minimal, stdlib-only stand-in for
// golang.org/x/sync/errgroup: a set of goroutines working on one task,
// with an optional concurrency limit and first-error propagation. The
// repository vendors no third-party modules, so the experiment fan-out and
// any future concurrent drivers share this implementation instead.
package workgroup

import "sync"

// Group runs tasks on goroutines, optionally bounded, and collects the
// first error. The zero value is unbounded and ready to use.
type Group struct {
	sem  chan struct{}
	wg   sync.WaitGroup
	once sync.Once
	err  error
}

// WithLimit returns a Group running at most n tasks concurrently; n < 1 is
// treated as 1.
func WithLimit(n int) *Group {
	if n < 1 {
		n = 1
	}
	return &Group{sem: make(chan struct{}, n)}
}

// Go schedules fn. When the group has a limit, Go blocks until a slot frees
// up — backpressure on the producer, exactly like errgroup.SetLimit.
func (g *Group) Go(fn func() error) {
	if g.sem != nil {
		g.sem <- struct{}{}
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if g.sem != nil {
			defer func() { <-g.sem }()
		}
		if err := fn(); err != nil {
			g.once.Do(func() { g.err = err })
		}
	}()
}

// Wait blocks until every scheduled task finished and returns the first
// error any of them produced.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.err
}
