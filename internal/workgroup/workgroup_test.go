package workgroup

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestAllTasksRun(t *testing.T) {
	var n atomic.Int64
	g := WithLimit(4)
	for i := 0; i < 100; i++ {
		g.Go(func() error {
			n.Add(1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", n.Load())
	}
}

func TestFirstErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	g := WithLimit(2)
	for i := 0; i < 10; i++ {
		i := i
		g.Go(func() error {
			if i == 3 {
				return boom
			}
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
}

func TestLimitBoundsConcurrency(t *testing.T) {
	var cur, max atomic.Int64
	g := WithLimit(3)
	for i := 0; i < 50; i++ {
		g.Go(func() error {
			c := cur.Add(1)
			for {
				m := max.Load()
				if c <= m || max.CompareAndSwap(m, c) {
					break
				}
			}
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if max.Load() > 3 {
		t.Fatalf("observed %d concurrent tasks, limit 3", max.Load())
	}
}

func TestZeroValueGroup(t *testing.T) {
	var g Group
	var n atomic.Int64
	for i := 0; i < 8; i++ {
		g.Go(func() error { n.Add(1); return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 8 {
		t.Fatalf("ran %d of 8 tasks", n.Load())
	}
}
