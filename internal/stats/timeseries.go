package stats

import (
	"errors"
	"math"
	"time"
)

// TimeSeries accumulates values into fixed-width bins starting at a given
// origin. It is the backbone of the hourly (Figure 2) and daily (outbreak
// analysis) aggregations: the measurement pipeline adds one observation per
// flow record and reads the binned totals back out.
type TimeSeries struct {
	origin time.Time
	width  time.Duration
	bins   []float64
}

// NewTimeSeries creates a series of n bins of the given width starting at
// origin. It panics on non-positive width or n, which would always be a
// programming error.
func NewTimeSeries(origin time.Time, width time.Duration, n int) *TimeSeries {
	if width <= 0 {
		panic("stats: TimeSeries width must be positive")
	}
	if n <= 0 {
		panic("stats: TimeSeries length must be positive")
	}
	return &TimeSeries{origin: origin, width: width, bins: make([]float64, n)}
}

// Add accumulates v into the bin containing t. Observations outside the
// series range are dropped and reported as false, mirroring how the paper's
// pipeline discards flows outside the capture window.
func (ts *TimeSeries) Add(t time.Time, v float64) bool {
	idx := ts.Index(t)
	if idx < 0 {
		return false
	}
	ts.bins[idx] += v
	return true
}

// Index returns the bin index for t, or -1 if t is out of range.
func (ts *TimeSeries) Index(t time.Time) int {
	if t.Before(ts.origin) {
		return -1
	}
	idx := int(t.Sub(ts.origin) / ts.width)
	if idx >= len(ts.bins) {
		return -1
	}
	return idx
}

// Len returns the number of bins.
func (ts *TimeSeries) Len() int { return len(ts.bins) }

// Bin returns the accumulated value of bin i.
func (ts *TimeSeries) Bin(i int) float64 { return ts.bins[i] }

// BinStart returns the start time of bin i.
func (ts *TimeSeries) BinStart(i int) time.Time {
	return ts.origin.Add(time.Duration(i) * ts.width)
}

// Values returns a copy of all bins.
func (ts *TimeSeries) Values() []float64 {
	out := make([]float64, len(ts.bins))
	copy(out, ts.bins)
	return out
}

// Total returns the sum over all bins.
func (ts *TimeSeries) Total() float64 {
	var sum float64
	for _, v := range ts.bins {
		sum += v
	}
	return sum
}

// Rebin aggregates the series into coarser bins by an integer factor, e.g.
// 24 to turn hourly bins into daily ones. The last partial group, if any, is
// kept. It errors on factors < 1.
func (ts *TimeSeries) Rebin(factor int) (*TimeSeries, error) {
	if factor < 1 {
		return nil, errors.New("stats: rebin factor must be >= 1")
	}
	n := (len(ts.bins) + factor - 1) / factor
	out := NewTimeSeries(ts.origin, ts.width*time.Duration(factor), n)
	for i, v := range ts.bins {
		out.bins[i/factor] += v
	}
	return out, nil
}

// DayOverDayRatio returns bins[d] / bins[d-1] for a daily-rebinned view of
// the series; the paper reports a 7.5x increase of flows on June 16 relative
// to June 15 this way. A zero denominator yields +Inf only when the
// numerator is positive, else 0.
func (ts *TimeSeries) DayOverDayRatio(day int) float64 {
	if day <= 0 || day >= len(ts.bins) {
		return 0
	}
	prev, cur := ts.bins[day-1], ts.bins[day]
	if prev == 0 {
		if cur > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return cur / prev
}
