package stats

import (
	"math"
	"testing"
	"time"
)

var origin = time.Date(2020, time.June, 15, 0, 0, 0, 0, time.UTC)

func TestTimeSeriesAdd(t *testing.T) {
	ts := NewTimeSeries(origin, time.Hour, 24)
	if !ts.Add(origin, 1) {
		t.Fatal("Add at origin rejected")
	}
	if !ts.Add(origin.Add(30*time.Minute), 2) {
		t.Fatal("Add mid-bin rejected")
	}
	if !ts.Add(origin.Add(23*time.Hour+59*time.Minute), 5) {
		t.Fatal("Add in last bin rejected")
	}
	if ts.Add(origin.Add(24*time.Hour), 1) {
		t.Fatal("Add past end accepted")
	}
	if ts.Add(origin.Add(-time.Second), 1) {
		t.Fatal("Add before origin accepted")
	}
	if got := ts.Bin(0); got != 3 {
		t.Fatalf("Bin(0) = %g, want 3", got)
	}
	if got := ts.Bin(23); got != 5 {
		t.Fatalf("Bin(23) = %g, want 5", got)
	}
	if got := ts.Total(); got != 8 {
		t.Fatalf("Total = %g, want 8", got)
	}
}

func TestTimeSeriesPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero width", func() { NewTimeSeries(origin, 0, 1) })
	mustPanic("zero bins", func() { NewTimeSeries(origin, time.Hour, 0) })
}

func TestTimeSeriesBinStart(t *testing.T) {
	ts := NewTimeSeries(origin, time.Hour, 48)
	if got := ts.BinStart(25); !got.Equal(origin.Add(25 * time.Hour)) {
		t.Fatalf("BinStart(25) = %s", got)
	}
}

func TestRebin(t *testing.T) {
	ts := NewTimeSeries(origin, time.Hour, 48)
	for h := 0; h < 48; h++ {
		ts.Add(origin.Add(time.Duration(h)*time.Hour), 1)
	}
	daily, err := ts.Rebin(24)
	if err != nil {
		t.Fatal(err)
	}
	if daily.Len() != 2 {
		t.Fatalf("daily.Len = %d", daily.Len())
	}
	if daily.Bin(0) != 24 || daily.Bin(1) != 24 {
		t.Fatalf("daily bins = %v", daily.Values())
	}
	if _, err := ts.Rebin(0); err == nil {
		t.Fatal("Rebin(0) must error")
	}
}

func TestRebinPartialTail(t *testing.T) {
	ts := NewTimeSeries(origin, time.Hour, 25)
	for h := 0; h < 25; h++ {
		ts.Add(origin.Add(time.Duration(h)*time.Hour), 2)
	}
	daily, err := ts.Rebin(24)
	if err != nil {
		t.Fatal(err)
	}
	if daily.Len() != 2 {
		t.Fatalf("want 2 bins (one partial), got %d", daily.Len())
	}
	if daily.Bin(1) != 2 {
		t.Fatalf("partial tail bin = %g, want 2", daily.Bin(1))
	}
}

func TestRebinConservesTotal(t *testing.T) {
	ts := NewTimeSeries(origin, time.Hour, 100)
	for h := 0; h < 100; h++ {
		ts.Add(origin.Add(time.Duration(h)*time.Hour), float64(h))
	}
	for _, factor := range []int{1, 2, 7, 24, 101} {
		re, err := ts.Rebin(factor)
		if err != nil {
			t.Fatal(err)
		}
		if re.Total() != ts.Total() {
			t.Fatalf("factor %d: total %g != %g", factor, re.Total(), ts.Total())
		}
	}
}

func TestDayOverDayRatio(t *testing.T) {
	ts := NewTimeSeries(origin, 24*time.Hour, 3)
	ts.Add(origin, 100)
	ts.Add(origin.Add(24*time.Hour), 750)
	if r := ts.DayOverDayRatio(1); math.Abs(r-7.5) > 1e-12 {
		t.Fatalf("ratio = %g, want 7.5", r)
	}
	if r := ts.DayOverDayRatio(0); r != 0 {
		t.Fatalf("day 0 ratio = %g, want 0", r)
	}
	if r := ts.DayOverDayRatio(2); r != 0 {
		t.Fatalf("zero/zero ratio = %g, want 0", r)
	}
	ts.Add(origin.Add(48*time.Hour), 5)
	ts2 := NewTimeSeries(origin, 24*time.Hour, 2)
	ts2.Add(origin.Add(24*time.Hour), 5)
	if r := ts2.DayOverDayRatio(1); !math.IsInf(r, 1) {
		t.Fatalf("x/0 ratio = %g, want +Inf", r)
	}
}

func TestValuesIsCopy(t *testing.T) {
	ts := NewTimeSeries(origin, time.Hour, 2)
	ts.Add(origin, 1)
	vs := ts.Values()
	vs[0] = 99
	if ts.Bin(0) != 1 {
		t.Fatal("Values must return a copy")
	}
}
