// Package stats holds the small numerical toolbox used by the measurement
// pipeline: quantiles, empirical CDFs, normalization, and correlation. The
// paper's figures are built from exactly these operations — Figure 2 norms
// hourly series to their minimum, Figure 3 norms district sums to their
// maximum, and the prefix-persistence result is a pair of CDF quantiles.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by operations that need at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7 estimator, the same the
// paper's R plots would use). The input is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of range")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// NormalizeToMin divides every element by the smallest strictly positive
// element, the normalization of the paper's Figure 2 ("normed to the
// minimum"). Zero elements stay zero. If no element is positive the result
// is a copy of the input.
func NormalizeToMin(xs []float64) []float64 {
	minPos := math.Inf(1)
	for _, x := range xs {
		if x > 0 && x < minPos {
			minPos = x
		}
	}
	out := make([]float64, len(xs))
	if math.IsInf(minPos, 1) {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / minPos
	}
	return out
}

// NormalizeToMax divides every element by the maximum, the normalization of
// the paper's Figure 3 ("normalized by maximum"). If the maximum is not
// positive the result is a copy of the input.
func NormalizeToMax(xs []float64) []float64 {
	var max float64
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	out := make([]float64, len(xs))
	if max <= 0 {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / max
	}
	return out
}

// Pearson returns the Pearson correlation coefficient of the paired samples
// xs and ys. It errors if the lengths differ, fewer than two pairs exist, or
// either side has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, errors.New("stats: need at least two pairs")
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// CDF is an empirical cumulative distribution function over float64 samples.
// The zero value is empty and ready to use.
type CDF struct {
	sorted []float64
	dirty  bool
}

// Add inserts a sample.
func (c *CDF) Add(x float64) {
	c.sorted = append(c.sorted, x)
	c.dirty = true
}

// Len reports the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

func (c *CDF) ensure() {
	if c.dirty {
		sort.Float64s(c.sorted)
		c.dirty = false
	}
}

// P returns the empirical probability P[X <= x].
func (c *CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	c.ensure()
	// Index of the first element > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile of the samples.
func (c *CDF) Quantile(q float64) (float64, error) {
	c.ensure()
	return Quantile(c.sorted, q)
}

// Values returns the sorted samples. The caller must not modify the result.
func (c *CDF) Values() []float64 {
	c.ensure()
	return c.sorted
}
