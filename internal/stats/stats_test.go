package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty input must error")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("negative q must error")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("q > 1 must error")
	}
	if _, err := Quantile([]float64{1}, math.NaN()); err == nil {
		t.Error("NaN q must error")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantileSingle(t *testing.T) {
	got, err := Quantile([]float64{7}, 0.9)
	if err != nil || got != 7 {
		t.Fatalf("Quantile(single) = %g, %v", got, err)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{2, 8, 5}
	if m, _ := Mean(xs); m != 5 {
		t.Errorf("Mean = %g", m)
	}
	if m, _ := Min(xs); m != 2 {
		t.Errorf("Min = %g", m)
	}
	if m, _ := Max(xs); m != 8 {
		t.Errorf("Max = %g", m)
	}
	for _, f := range []func([]float64) (float64, error){Mean, Min, Max} {
		if _, err := f(nil); err != ErrEmpty {
			t.Error("empty input must return ErrEmpty")
		}
	}
}

func TestNormalizeToMin(t *testing.T) {
	got := NormalizeToMin([]float64{4, 2, 8, 0})
	want := []float64{2, 1, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NormalizeToMin = %v, want %v", got, want)
		}
	}
}

func TestNormalizeToMinAllZero(t *testing.T) {
	got := NormalizeToMin([]float64{0, 0})
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("all-zero input must be unchanged, got %v", got)
	}
}

func TestNormalizeToMax(t *testing.T) {
	got := NormalizeToMax([]float64{5, 10, 0})
	want := []float64{0.5, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NormalizeToMax = %v, want %v", got, want)
		}
	}
}

func TestNormalizePropertyMinIsOne(t *testing.T) {
	f := func(raw []float64) bool {
		// Use absolute values shifted up so a positive min exists.
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			xs[i] = math.Abs(v) + 1
		}
		normed := NormalizeToMin(xs)
		min, err := Min(normed)
		return err == nil && math.Abs(min-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation: r = %g", r)
	}
	inv := []float64{8, 6, 4, 2}
	r, err = Pearson(xs, inv)
	if err != nil || math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anti-correlation: r = %g, %v", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("single pair must error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero variance must error")
	}
}

func TestCDF(t *testing.T) {
	var c CDF
	for _, v := range []float64{1, 2, 3, 4} {
		c.Add(v)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if p := c.P(2); p != 0.5 {
		t.Errorf("P(2) = %g, want 0.5", p)
	}
	if p := c.P(0.5); p != 0 {
		t.Errorf("P(0.5) = %g, want 0", p)
	}
	if p := c.P(4); p != 1 {
		t.Errorf("P(4) = %g, want 1", p)
	}
	q, err := c.Quantile(0.5)
	if err != nil || q != 2.5 {
		t.Errorf("Quantile(0.5) = %g, %v", q, err)
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if p := c.P(1); p != 0 {
		t.Errorf("empty CDF P = %g", p)
	}
	if _, err := c.Quantile(0.5); err == nil {
		t.Error("empty CDF quantile must error")
	}
}

func TestCDFInterleavedAddAndQuery(t *testing.T) {
	var c CDF
	c.Add(5)
	if p := c.P(5); p != 1 {
		t.Fatalf("P(5) = %g", p)
	}
	c.Add(1) // triggers re-sort on next query
	if p := c.P(1); p != 0.5 {
		t.Fatalf("P(1) after re-add = %g", p)
	}
	vs := c.Values()
	if vs[0] != 1 || vs[1] != 5 {
		t.Fatalf("Values not sorted: %v", vs)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(samples []float64, a, b float64) bool {
		var c CDF
		for _, s := range samples {
			if math.IsNaN(s) {
				s = 0
			}
			c.Add(s)
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.P(lo) <= c.P(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
