// Package cwatrace reproduces "Corona-Warn-App: Tracing the Start of the
// Official COVID-19 Exposure Notification App for Germany" (Reelfs,
// Hohlfeld, Poese — SIGCOMM '20 Posters): a Netflow-based measurement
// study of the app's early adoption, rebuilt end to end in Go.
//
// The repository contains the full substrate the study depends on — the
// GAEN exposure-notification cryptography, the CWA backend and CDN, a
// German population/epidemic/adoption simulation, an ISP access network
// with sampled Netflow export and Crypto-PAn anonymization — plus the
// paper's measurement pipeline (internal/core), a declarative scenario
// layer (internal/scenario) and a benchmark harness that regenerates
// every figure and table. See DESIGN.md for the system inventory,
// EXPERIMENTS.md for paper-vs-measured results and README.md for the
// quickstart.
//
// # Package index
//
// Simulation substrate:
//
//   - internal/geo — deterministic model of Germany: 16 states, 401
//     districts with populations and locations
//   - internal/epidemic — per-district SEIR model with injected outbreaks
//     and the lab-testing pipeline
//   - internal/adoption — the national download curve, media-attention
//     signal and district install allocation
//   - internal/device — phone behaviour: daily syncs, website visits,
//     decoy calls, the upload flow, the background-restriction bug
//   - internal/sim — the sharded, parallel engine that turns all of the
//     above into an anonymized flow trace
//
// Hosting stack:
//
//   - internal/exposure — GAEN cryptography (TEKs, RPIs, risk scoring)
//   - internal/diagkeys — diagnosis-key packages: wire format, padding,
//     index documents
//   - internal/entime — exposure-notification intervals, Berlin time,
//     study calendar constants
//   - internal/cwaserver — the CWA backend: verification, submission,
//     distribution, website, plus an HTTP server facade
//   - internal/cdn — the edge cache in front of the backend, the layer
//     the vantage point actually observes
//
// Network and measurement:
//
//   - internal/netsim — ISPs, aggregation routers, prefixes, address
//     churn
//   - internal/netflow — router flow caches: packet sampling, timeouts,
//     evictions, the sharded collector
//   - internal/nfv9 — NetFlow v9 export packets (the wire format)
//   - internal/cryptopan — prefix-preserving address anonymization
//   - internal/geodb — the anonymized-prefix geolocation database
//   - internal/core — the paper's analysis: filters, Figure 2/3, prefix
//     persistence, outbreak analysis, news correlation
//   - internal/streaming — the same analyses computed online over a
//     record stream: sliding hourly windows, spike detection, top-K
//     prefixes, district rollups
//   - internal/ingest — the live collector pipeline: UDP readers,
//     per-source NFv9 decoding, bounded sharded fan-out with drop
//     accounting, durable-sink and flush hooks, and the NFv9 trace
//     replayer
//   - internal/store — the collector's durable state: segment-based WAL,
//     checkpointed analytics frames with CRC-protected records, crash
//     recovery, background compaction, and the historical time-range
//     query engine
//   - internal/tier — the long-horizon history layer over the store:
//     day/week tier frames folded additively from checkpoint frames,
//     versioned CRC-protected codec, and the span-aware query planner
//     behind resolution=hour|day|week|auto
//   - internal/sketch — the bounded-memory estimators tier frames
//     carry: HyperLogLog distinct-prefix cardinality and a compressing
//     presence-quantile sketch, both with associative, order-invariant
//     merges
//   - internal/api — the versioned analytics API served by collectord:
//     conditional-GET caching (strong ETags from store generations, a
//     single-flight response cache), field selection, gzip, timeouts,
//     method enforcement, deprecated legacy aliases
//   - internal/api/v1 — the frozen v1 wire schema: typed
//     request/response structs, the structured error envelope, field
//     selection vocabulary
//   - internal/api/client — the typed Go client: retries with backoff,
//     ETag-aware local caching, structured errors
//   - internal/cluster — the shard ownership map (401-district
//     partition plus /24 hashing) and the scatter-gather fleet behind
//     queryrouterd: commutative merge via streaming.Merge, composite
//     validators, honest degraded-mode accounting
//   - internal/obs — the dependency-free telemetry core shared by both
//     daemons: atomic counters/gauges and lock-free histograms on a
//     Prometheus text registry (nil registry = free no-op), X-Request-Id
//     tracing, freshness watermarks, and the strict exposition linter
//     the daemon tests scrape /metrics through
//   - internal/trace — JSONL/binary trace serialization for
//     cwasim/cwanalyze
//
// Experiments and scenarios:
//
//   - internal/scenario — declarative what-if specs, the named catalog,
//     and the sweep runner with its comparison table
//   - internal/experiments — every figure/table/ablation as a library
//     function, shared by cmd/experiments and bench_test.go
//   - internal/appid — the future-work periodicity classifier
//   - internal/ble — BLE contact process and adoption-efficacy curve
//   - internal/centralized — the centralized-architecture baseline for
//     the privacy/traffic comparison
//   - internal/dnssim — resolver fleet and top-list study (T5)
//   - internal/stats — time series, quantiles, Pearson correlation
//   - internal/workgroup — minimal stdlib-only errgroup equivalent
//
// Commands: cmd/experiments (regenerate all artefacts), cmd/scenarios
// (list/validate/run what-if scenarios), cmd/cwasim + cmd/cwanalyze
// (capture to disk, analyze from disk; -export replays the trace live,
// -data-dir analyzes historical ranges from a collectord store, -addr
// queries a live collectord over the versioned API), cmd/cwabackend
// (the backend as a live HTTP server), cmd/collectord (the live NFv9
// collector daemon with sliding-window analytics, durable
// WAL/checkpoint persistence and the /api/v1 analytics surface;
// -shard i/N keeps one cluster shard's slice), cmd/queryrouterd (the
// stateless cluster query router: scatter-gather over sharded
// collectors, byte-identical merged responses, composite ETags,
// partial-failure envelopes), and cmd/apiload (the concurrent API load
// generator; -self benchmarks cached vs uncached reads under live
// ingest).
package cwatrace
