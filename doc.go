// Package cwatrace reproduces "Corona-Warn-App: Tracing the Start of the
// Official COVID-19 Exposure Notification App for Germany" (Reelfs,
// Hohlfeld, Poese — SIGCOMM '20 Posters): a Netflow-based measurement
// study of the app's early adoption, rebuilt end to end in Go.
//
// The repository contains the full substrate the study depends on — the
// GAEN exposure-notification cryptography, the CWA backend and CDN, a
// German population/epidemic/adoption simulation, an ISP access network
// with sampled Netflow export and Crypto-PAn anonymization — plus the
// paper's measurement pipeline (internal/core) and a benchmark harness
// that regenerates every figure and table. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
package cwatrace
