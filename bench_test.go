// Benchmark harness: one benchmark per figure and table of the paper plus
// the reproduction's ablations (see the experiment index in DESIGN.md).
// Each benchmark regenerates its artefact and reports the headline numbers
// as custom metrics, so `go test -bench=. -benchmem` prints the same rows
// the paper reports next to throughput data.
//
// Expected shapes (paper -> metric):
//
//	Figure2  release-day jump 7.5x            -> release_ratio
//	Figure3  almost all 401 districts active  -> districts_active
//	Table2   presence quantiles 0.67/0.80     -> presence_p50 / presence_p75
//	Table4   NRW tracks the nation            -> nrw_excess
//	Table5   API listed, website never        -> api_listed_days / web_listed_days
//	Table6   first keys June 23               -> first_keys_day_offset (0 = Jun 23)
package cwatrace_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cwatrace/internal/adoption"
	"cwatrace/internal/ble"
	"cwatrace/internal/core"
	"cwatrace/internal/cwaserver"
	"cwatrace/internal/entime"
	"cwatrace/internal/experiments"
	"cwatrace/internal/exposure"
	"cwatrace/internal/sim"
)

// BenchmarkSimRun measures the simulation engine itself — the stage every
// other benchmark's suite depends on — serial (Workers=1) versus parallel
// (Workers=0, all CPUs) at Quick scale and at 4x the Quick workload. The
// parallel/serial ratio at 4xquick is the engine speedup tracked in the
// bench trajectory; outputs are byte-identical across worker counts, so
// only wall clock may differ.
func BenchmarkSimRun(b *testing.B) {
	sizes := []struct {
		name string
		div  int // divide Scale: fewer real users per device = more devices
	}{
		{"quick", 1},
		{"4xquick", 4},
	}
	modes := []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	}
	for _, size := range sizes {
		for _, mode := range modes {
			b.Run(size.name+"/"+mode.name, func(b *testing.B) {
				cfg := experiments.QuickConfig()
				cfg.Scale /= size.div
				cfg.Workers = mode.workers
				b.ReportAllocs()
				b.ResetTimer()
				var records int
				for i := 0; i < b.N; i++ {
					res, err := sim.Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					records = res.Stats.Records
				}
				b.ReportMetric(float64(records), "records")
			})
		}
	}
}

// suiteOnce shares one simulated data set across benchmarks; the per-bench
// loops then measure the analysis stage itself.
var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = experiments.RunSuite(experiments.QuickConfig())
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// BenchmarkFigure1Architecture exercises the system of the paper's Figure
// 1 end to end: broadcast -> lab -> TAN -> upload -> download -> match,
// over real HTTP.
func BenchmarkFigure1Architecture(b *testing.B) {
	clock := entime.NewSimClock(entime.FirstKeysObserved.Add(9 * time.Hour))
	backend, err := cwaserver.New(cwaserver.DefaultConfig(), clock)
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(cwaserver.Handler(backend, nil))
	defer srv.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := exposure.NewKeyStore(nil)
		bc := exposure.NewBroadcaster(store, exposure.Metadata{0x40, 8, 0, 0})
		at := entime.IntervalOf(clock.Now().Add(-20 * time.Hour))
		rpi, _, err := bc.Payload(at)
		if err != nil {
			b.Fatal(err)
		}
		token := backend.RegisterTest(cwaserver.ResultPositive, clock.Now().Add(-time.Hour))
		tan, err := backend.IssueTAN(token)
		if err != nil {
			b.Fatal(err)
		}
		nowI := entime.IntervalOf(clock.Now())
		teks := store.KeysSince(nowI.Add(-exposure.StorageDays*entime.EKRollingPeriod), nowI)
		var dks []exposure.DiagnosisKey
		for _, k := range teks {
			dks = append(dks, exposure.DiagnosisKey{TEK: k, TransmissionRiskLevel: 6})
		}
		payload, err := cwaserver.EncodeUpload(dks)
		if err != nil {
			b.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, srv.URL+cwaserver.PathSubmission, bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		req.Header.Set(cwaserver.HeaderTAN, tan)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("upload status %d", resp.StatusCode)
		}
		matcher := exposure.NewMatcher([]exposure.Encounter{{
			RPI: rpi, Interval: at, DurationMin: 25, AttenuationDB: 48,
		}})
		matches, err := matcher.Match(dks)
		if err != nil {
			b.Fatal(err)
		}
		if !exposure.DefaultRiskConfig().Score(matches).Elevated {
			b.Fatal("round trip failed to elevate risk")
		}
	}
}

// BenchmarkFigure2Timeline regenerates the hourly flows/bytes series with
// the download overlay.
func BenchmarkFigure2Timeline(b *testing.B) {
	s := benchSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res *core.Figure2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ReleaseDayFlowRatio, "release_ratio")
	b.ReportMetric(res.ResurgenceRatio, "resurgence_ratio")
}

// BenchmarkFigure3Heatmap regenerates the 10-day district aggregation.
func BenchmarkFigure3Heatmap(b *testing.B) {
	s := benchSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	var active, total int
	var router, similarity float64
	for i := 0; i < b.N; i++ {
		full, _, sim, err := s.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		active, total, router, similarity = full.ActiveDistricts, full.TotalDistricts, full.RouterShare, sim
	}
	b.ReportMetric(float64(active), "districts_active")
	b.ReportMetric(float64(total), "districts_total")
	b.ReportMetric(router*100, "router_truth_pct")
	b.ReportMetric(similarity, "day1_similarity")
}

// BenchmarkTable1Dataset regenerates the filter census.
func BenchmarkTable1Dataset(b *testing.B) {
	s := benchSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	var kept int
	for i := 0; i < b.N; i++ {
		_, census := core.ApplyFilter(s.Result.Records, core.DefaultFilter())
		kept = census.Kept
	}
	b.ReportMetric(float64(kept), "kept_flows")
	b.ReportMetric(float64(kept*s.Cfg.Scale), "kept_flows_scaled")
}

// BenchmarkTable2Persistence regenerates the prefix persistence quantiles.
func BenchmarkTable2Persistence(b *testing.B) {
	s := benchSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res core.PersistenceResult
	for i := 0; i < b.N; i++ {
		res = s.Persistence()
	}
	b.ReportMetric(res.MedianFraction, "presence_p50")
	b.ReportMetric(res.P75Fraction, "presence_p75")
	b.ReportMetric(float64(res.Prefixes), "prefixes")
}

// BenchmarkTable3Adoption regenerates the adoption anchors.
func BenchmarkTable3Adoption(b *testing.B) {
	s := benchSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	var tab experiments.AdoptionTable
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = s.Adoption()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tab.DownloadsAt36h/1e6, "downloads_36h_M")
	b.ReportMetric(tab.DownloadsJul24/1e6, "downloads_jul24_M")
	b.ReportMetric(tab.ReleaseDayFlowRatio, "release_ratio")
}

// BenchmarkTable4Outbreaks regenerates the outbreak non-effect analysis.
func BenchmarkTable4Outbreaks(b *testing.B) {
	s := benchSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rep *core.OutbreakReport
	for i := 0; i < b.N; i++ {
		rep = s.Outbreaks()
	}
	b.ReportMetric(rep.NationalGrowth, "national_growth")
	b.ReportMetric(rep.NRWExcess, "nrw_excess")
	b.ReportMetric(rep.GueterslohGrowth, "guetersloh_growth")
	if _, single := rep.BerlinSingleISP(0.15); single {
		b.ReportMetric(1, "berlin_single_isp")
	} else {
		b.ReportMetric(0, "berlin_single_isp")
	}
}

// BenchmarkTable5DNS regenerates the resolver verification and the
// Umbrella-style top-list observation.
func BenchmarkTable5DNS(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	var tab experiments.DNSTable
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = experiments.DNS(10_000, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tab.APIListed)), "api_listed_days")
	b.ReportMetric(float64(len(tab.WebListed)), "web_listed_days")
	if tab.Verify.Confirmed() {
		b.ReportMetric(1, "prefixes_confirmed")
	} else {
		b.ReportMetric(0, "prefixes_confirmed")
	}
}

// BenchmarkTable6FirstKeys regenerates the first-diagnosis-keys result.
func BenchmarkTable6FirstKeys(b *testing.B) {
	s := benchSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	var tab experiments.FirstKeysTable
	for i := 0; i < b.N; i++ {
		tab = s.FirstKeys()
	}
	// Day offset from the paper's June 23 (0 = exact match).
	offset := 99.0
	if tab.FirstDay != "" {
		first, err := time.ParseInLocation("2006-01-02", tab.FirstDay, entime.Berlin)
		if err == nil {
			offset = first.Sub(entime.FirstKeysObserved).Hours() / 24
		}
	}
	b.ReportMetric(offset, "first_keys_day_offset")
	b.ReportMetric(float64(tab.Uploads), "uploads")
}

// BenchmarkAblationSampling sweeps the router sampling rate (A1); each
// iteration re-simulates the capture at three rates.
func BenchmarkAblationSampling(b *testing.B) {
	base := experiments.QuickConfig()
	b.ReportAllocs()
	b.ResetTimer()
	var points []experiments.SamplingPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.SamplingAblation(base, []int{1, 16, 256})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := points[len(points)-1]
	b.ReportMetric(last.SinglePacketShare, "one_pkt_share_1in256")
	b.ReportMetric(last.MedianPresence, "presence_p50_1in256")
	b.ReportMetric(points[0].MeanPktsPerFlow, "pkts_per_flow_unsampled")
}

// BenchmarkAblationCentralized contrasts the two architectures (A2).
func BenchmarkAblationCentralized(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	var factor float64
	var pairs int
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.Centralized()
		if err != nil {
			b.Fatal(err)
		}
		factor, pairs = cmp.DownloadFactor, cmp.Centralized.ContactPairsRevealed
	}
	b.ReportMetric(factor, "decentralized_down_factor")
	b.ReportMetric(float64(pairs), "centralized_pairs_revealed")
}

// BenchmarkAblationBackgroundBug sweeps the energy-saving bug share (A3);
// each iteration re-simulates at three shares.
func BenchmarkAblationBackgroundBug(b *testing.B) {
	base := experiments.QuickConfig()
	b.ReportAllocs()
	b.ResetTimer()
	var points []experiments.BugPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.BackgroundBugAblation(base, []float64{0, 0.35, 0.7})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(points[0].SyncsPerDeviceDay, "syncs_per_dev_day_bug0")
	b.ReportMetric(points[len(points)-1].SyncsPerDeviceDay, "syncs_per_dev_day_bug70")
}

// BenchmarkAblationAdoptionEfficacy quantifies the paper's motivation (A4):
// the share of contacts detectable by the app scales with adoption squared.
func BenchmarkAblationAdoptionEfficacy(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	var points []ble.EfficacyPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.Efficacy()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Adoption == 0.28 { // Germany's late-July 2020 level
			b.ReportMetric(p.DetectableShare, "detectable_at_28pct")
		}
	}
	b.ReportMetric(points[len(points)-1].DetectableShare, "detectable_at_80pct")
}

// BenchmarkFutureWorkAppID runs the paper's future-work app identification
// (FW1) over the shared trace and reports classifier quality.
func BenchmarkFutureWorkAppID(b *testing.B) {
	s := benchSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res experiments.AppIDResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = s.AppID()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Eval.Precision(), "precision")
	b.ReportMetric(res.Eval.Recall(), "recall")
}

// BenchmarkFutureWorkNewsCorrelation quantifies FW2: media attention vs
// traffic, from the trace and against ground truth.
func BenchmarkFutureWorkNewsCorrelation(b *testing.B) {
	s := benchSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	var fromTrace, truth float64
	for i := 0; i < b.N; i++ {
		var err error
		fromTrace, truth, err = s.NewsCorrelation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fromTrace, "r_trace")
	b.ReportMetric(truth, "r_ground_truth")
}

// BenchmarkFutureWorkLongTerm extends the window to four weeks (FW3) and
// reports where traffic and human interest head after the launch spike.
func BenchmarkFutureWorkLongTerm(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	var res experiments.LongTermResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.LongTerm()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.TrendRatio, "traffic_trend_w4_w2")
	b.ReportMetric(res.InterestTrendRatio, "interest_trend_w4_w2")
}

// BenchmarkDownloadCurve measures the adoption curve evaluation itself.
func BenchmarkDownloadCurve(b *testing.B) {
	curve := adoption.DefaultCurve()
	t := entime.AppRelease.Add(36 * time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	var v float64
	for i := 0; i < b.N; i++ {
		v = curve.Cumulative(t)
	}
	b.ReportMetric(v/1e6, "downloads_36h_M")
}
