// Privacy demonstrates the data-protection machinery the study rests on:
//
//  1. Crypto-PAn prefix-preserving anonymization — the property that lets
//     the paper aggregate by routing prefix without seeing client IPs.
//  2. The geolocation error model — why the paper warns that "client
//     geolocation can be subject to errors" outside the ISP ground truth.
//  3. The architecture comparison — what a centralized tracing server
//     would have learned, versus what the CWA backend can learn.
//
// Run with: go run ./examples/privacy
package main

import (
	"fmt"
	"log"
	"net/netip"

	"cwatrace/internal/centralized"
	"cwatrace/internal/cryptopan"
	"cwatrace/internal/geo"
	"cwatrace/internal/geodb"
)

func main() {
	// --- 1. Prefix-preserving anonymization. ---
	key := make([]byte, cryptopan.KeySize)
	for i := range key {
		key[i] = byte(3*i + 1)
	}
	anon, err := cryptopan.New(key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("1. Crypto-PAn: same /24 in, same /24 out — identities gone, structure kept")
	fmt.Println("   original            anonymized")
	for _, s := range []string{"20.3.7.10", "20.3.7.99", "20.3.8.10", "21.0.0.1"} {
		a := netip.MustParseAddr(s)
		fmt.Printf("   %-18s  %s\n", a, anon.Anonymize(a))
	}
	p1 := anon.Anonymize(netip.MustParseAddr("20.3.7.10"))
	p2 := anon.Anonymize(netip.MustParseAddr("20.3.7.99"))
	same := netip.PrefixFrom(p1, 24).Masked().Contains(p2)
	fmt.Printf("   same-/24 clients still share an anonymized /24: %v\n\n", same)

	// --- 2. Geolocation error. ---
	model := geo.Germany()
	var infos []geodb.PrefixInfo
	districts := model.Districts()
	for i := 0; i < 1000; i++ {
		d := districts[i%len(districts)]
		isp := "Magenta"
		if i%6 == 0 {
			isp = "Blau" // the partner ISP with router ground truth
		}
		infos = append(infos, geodb.PrefixInfo{
			Prefix:     netip.PrefixFrom(netip.AddrFrom4([4]byte{20, byte(i >> 8), byte(i), 0}), 24),
			RouterID:   isp + "/" + d.ID,
			DistrictID: d.ID,
			ISPName:    isp,
		})
	}
	db, err := geodb.Build(model, infos, geodb.DefaultConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}
	var geoipWrong, geoipTotal, routerWrong, routerTotal int
	for _, info := range infos {
		e, ok := db.LocatePrefix(info.Prefix)
		if !ok {
			continue
		}
		correct := e.DistrictID == info.DistrictID
		if e.Source == geodb.SourceRouter {
			routerTotal++
			if !correct {
				routerWrong++
			}
		} else {
			geoipTotal++
			if !correct {
				geoipWrong++
			}
		}
	}
	fmt.Println("2. geolocation accuracy by source (paper: router locations are ground truth,")
	fmt.Println("   Maxmind-style lookups err at city level — Poese et al. 2011):")
	fmt.Printf("   router ground truth: %4d prefixes, %3d misplaced (%.0f%%)\n",
		routerTotal, routerWrong, 100*float64(routerWrong)/float64(routerTotal))
	fmt.Printf("   GeoIP database:      %4d prefixes, %3d misplaced (%.0f%%)\n\n",
		geoipTotal, geoipWrong, 100*float64(geoipWrong)/float64(geoipTotal))

	// --- 3. Centralized vs decentralized. ---
	cmp, err := centralized.RunComparison(centralized.ScenarioConfig{
		Users: 5000, Days: 10, EncountersPerDay: 5,
		PositivesPerDay: 3, KeysPerUpload: 10, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3. what the server learns (10 days, 5000 users, 3 positives/day):")
	fmt.Printf("   centralized baseline: %d contact pairs revealed, %d notified users identified\n",
		cmp.Centralized.ContactPairsRevealed, cmp.Centralized.NotifiedIdentified)
	fmt.Printf("   decentralized (CWA):  %d contact pairs, %d identified — matching happens on the phones\n",
		cmp.Decentralized.ContactPairsRevealed, cmp.Decentralized.NotifiedIdentified)
	fmt.Printf("   traffic price of decentralization: %.0fx more server->client bytes\n",
		cmp.DownloadFactor)
}
