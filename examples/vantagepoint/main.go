// Vantagepoint demonstrates the measurement infrastructure of the paper's
// data set end to end, over the real wire protocol: a router observes
// packets through a sampled flow cache, exports the records as NetFlow v9
// datagrams over UDP, a collector decodes them, client addresses are
// prefix-preserving anonymized, and the paper's filter reduces the stream
// to the measured data set.
//
// Run with: go run ./examples/vantagepoint
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"cwatrace/internal/core"
	"cwatrace/internal/cryptopan"
	"cwatrace/internal/netflow"
	"cwatrace/internal/netsim"
	"cwatrace/internal/nfv9"
)

func main() {
	// --- The collector side (BENOCS, in the paper). ---
	var mu sync.Mutex
	var received []netflow.Record
	collector, err := nfv9.NewCollector("127.0.0.1:0", func(recs []netflow.Record) {
		mu.Lock()
		received = append(received, recs...)
		mu.Unlock()
	})
	if err != nil {
		log.Fatal(err)
	}
	defer collector.Close()
	fmt.Printf("NetFlow v9 collector listening on %s\n", collector.Addr())

	// --- The router side: flow cache with 1:8 packet sampling. ---
	cfg := netflow.DefaultConfig()
	cfg.SampleRate = 8
	rng := rand.New(rand.NewSource(1))
	cache, err := netflow.NewCache("Magenta/BE-000", cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	exporter, err := nfv9.NewExporter(collector.Addr(), 64500)
	if err != nil {
		log.Fatal(err)
	}
	defer exporter.Close()

	// Synthesize an hour of mixed traffic: CWA downloads, website visits,
	// unrelated flows the filter must drop.
	start := time.Date(2020, time.June, 16, 9, 0, 0, 0, time.UTC)
	edge := netsim.CDNAddr(3)
	var pending []netflow.Record
	for c := 0; c < 400; c++ {
		client := netip.AddrFrom4([4]byte{20, 0, byte(c >> 4), byte(1 + c%200)})
		at := start.Add(time.Duration(c) * 7 * time.Second)
		// A CWA key download: ~45 downstream packets.
		for p := 0; p < 45; p++ {
			pending = append(pending, cache.Observe(netflow.Packet{
				Time: at.Add(time.Duration(p) * 20 * time.Millisecond),
				Src:  edge, Dst: client,
				SrcPort: 443, DstPort: uint16(50000 + c), Proto: netflow.ProtoTCP,
				Bytes: 1300,
			})...)
		}
		// Unrelated background flow (dropped by the prefix filter).
		pending = append(pending, cache.Observe(netflow.Packet{
			Time: at, Src: netip.MustParseAddr("8.8.8.8"), Dst: client,
			SrcPort: 443, DstPort: uint16(40000 + c), Proto: netflow.ProtoTCP, Bytes: 900,
		})...)
		if c%50 == 49 {
			pending = append(pending, cache.Sweep(at.Add(time.Minute))...)
		}
	}
	pending = append(pending, cache.Drain()...)
	obs, sampled := cache.Stats()
	fmt.Printf("router observed %d packets, sampled %d (1:%d), exported %d flow records\n",
		obs, sampled, cfg.SampleRate, len(pending))

	// --- Ship them over the wire. ---
	if err := exporter.Export(pending, start.Add(time.Hour)); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(received)
		mu.Unlock()
		if n >= len(pending) || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	packets, records, errors := collector.Stats()
	fmt.Printf("collector received %d datagrams, %d records, %d decode errors\n",
		packets, records, errors)

	// --- Anonymize (Crypto-PAn) and filter (the paper's data set). ---
	key := make([]byte, cryptopan.KeySize)
	for i := range key {
		key[i] = byte(i + 100)
	}
	anon, err := cryptopan.New(key)
	if err != nil {
		log.Fatal(err)
	}
	coll := netflow.NewCollector(anon, netsim.IsCWAServer)
	mu.Lock()
	coll.Ingest(received)
	mu.Unlock()
	anonymized := coll.Records()

	kept, census := core.ApplyFilter(anonymized, core.DefaultFilter())
	fmt.Printf("after anonymization + filtering: %s\n", census)
	if len(kept) > 0 {
		fmt.Printf("first kept record: %s -> %s (%d pkts, %d bytes) — client address anonymized\n",
			kept[0].Src, kept[0].Dst, kept[0].Packets, kept[0].Bytes)
	}
}
