// Quickstart walks the complete Corona-Warn-App protocol loop of the
// paper's Figure 1 against a live, in-process HTTP backend:
//
//  1. Two phones meet; the future patient's Bluetooth broadcast (rolling
//     proximity identifier) lands in the contact's encounter history.
//  2. A lab registers a positive SARS-CoV-2 test ("lab testing").
//  3. The patient's app polls the test result, fetches a TAN and uploads
//     its temporary exposure keys ("report infection").
//  4. The contact's app downloads the day's diagnosis-key package from the
//     distribution endpoint, matches it locally and scores the risk
//     ("detect infection").
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"cwatrace/internal/cwaserver"
	"cwatrace/internal/diagkeys"
	"cwatrace/internal/entime"
	"cwatrace/internal/exposure"
)

func main() {
	// The study clock: the day the first diagnosis keys appeared.
	clock := entime.NewSimClock(entime.FirstKeysObserved.Add(9 * time.Hour))
	backend, err := cwaserver.New(cwaserver.DefaultConfig(), clock)
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(cwaserver.Handler(backend, cwaserver.DefaultWebsite()))
	defer srv.Close()
	fmt.Printf("backend serving at %s (verification + submission + distribution + website)\n\n", srv.URL)

	// --- 1. Bluetooth contact, yesterday afternoon. ---
	patientKeys := exposure.NewKeyStore(nil)
	broadcaster := exposure.NewBroadcaster(patientKeys, exposure.Metadata{0x40, 8, 0, 0})
	contactAt := entime.IntervalOf(clock.Now().Add(-20 * time.Hour))
	rpi, _, err := broadcaster.Payload(contactAt)
	if err != nil {
		log.Fatal(err)
	}
	contactHistory := []exposure.Encounter{{
		RPI:           rpi,
		Interval:      contactAt,
		DurationMin:   25,
		AttenuationDB: 48,
	}}
	fmt.Printf("1. contact recorded: RPI %x… for 25 min at 48 dB\n", rpi[:4])

	// --- 2. Lab registers the positive test. ---
	token := backend.RegisterTest(cwaserver.ResultPositive, clock.Now().Add(-time.Hour))
	fmt.Printf("2. lab registered positive test, registration token %s…\n", token[:8])

	// --- 3. Patient polls, fetches TAN, uploads keys. ---
	var pollRes struct {
		TestResult int `json:"testResult"`
	}
	postJSON(srv.URL+cwaserver.PathTestResult, map[string]string{"registrationToken": token}, &pollRes)
	fmt.Printf("3. app polled test result: %d (2 = positive)\n", pollRes.TestResult)

	var tanRes struct {
		TAN string `json:"tan"`
	}
	postJSON(srv.URL+cwaserver.PathTAN, map[string]string{"registrationToken": token}, &tanRes)

	nowI := entime.IntervalOf(clock.Now())
	teks := patientKeys.KeysSince(nowI.Add(-exposure.StorageDays*entime.EKRollingPeriod), nowI)
	var dks []exposure.DiagnosisKey
	for _, k := range teks {
		dks = append(dks, exposure.DiagnosisKey{TEK: k, TransmissionRiskLevel: 6})
	}
	payload, err := cwaserver.EncodeUpload(dks)
	if err != nil {
		log.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+cwaserver.PathSubmission, bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set(cwaserver.HeaderTAN, tanRes.TAN)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("   uploaded %d diagnosis keys with TAN %s… (status %d, %d byte payload)\n",
		len(dks), tanRes.TAN[:8], resp.StatusCode, len(payload))

	// --- 4. Contact downloads the package and matches locally. ---
	resp, err = http.Get(srv.URL + cwaserver.PathDatePrefix + "DE/date")
	if err != nil {
		log.Fatal(err)
	}
	idxData, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	idx, err := diagkeys.UnmarshalIndex(idxData)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4. distribution index lists days: %v\n", idx.Days)

	resp, err = http.Get(srv.URL + cwaserver.PathDatePrefix + "DE/date/" + idx.Days[0])
	if err != nil {
		log.Fatal(err)
	}
	pkg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	export, err := diagkeys.Unmarshal(pkg, backend.Signer())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   downloaded %d bytes, %d keys (real + plausible-deniability padding), signature ok\n",
		len(pkg), len(export.Keys))

	matcher := exposure.NewMatcher(contactHistory)
	matches, err := matcher.Match(export.Keys)
	if err != nil {
		log.Fatal(err)
	}
	risk := exposure.DefaultRiskConfig().Score(matches)
	fmt.Printf("   local matching found %d exposure(s); risk score %.1f -> elevated=%v\n",
		len(matches), risk.Score, risk.Elevated)
	if risk.Elevated {
		fmt.Println("\nthe contact's app would now warn: exposure to a person later tested positive")
	}
}

func postJSON(url string, body, out any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
