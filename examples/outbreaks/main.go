// Outbreaks regenerates the paper's geographic analyses: the Figure-3
// district heatmap ("usage across Germany aggregated over 10 days
// normalized by maximum"), the day-one spread comparison, and the outbreak
// non-effect result — the June-23 traffic increase is nation-wide rather
// than local to the locked-down districts, and the Berlin June-18 outbreak
// is visible for a single ISP only.
//
// Run with: go run ./examples/outbreaks
package main

import (
	"fmt"
	"log"

	"cwatrace/internal/core"
	"cwatrace/internal/experiments"
)

func main() {
	fmt.Println("simulating the study window (June 15-25, 2020)...")
	suite, err := experiments.RunSuite(experiments.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}

	full, dayOne, similarity, err := suite.Figure3()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(core.RenderFigure3(full))
	fmt.Printf("day one alone: %d of %d districts active; correlation with the 10-day map: %.3f\n",
		dayOne.ActiveDistricts, dayOne.TotalDistricts, similarity)
	fmt.Println("(paper: evaluating the first day leads to almost the same observation)")
	fmt.Println()

	fmt.Println(core.RenderOutbreaks(suite.Outbreaks()))

	fmt.Println(core.RenderPersistence(suite.Persistence()))
}
