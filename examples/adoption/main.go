// Adoption regenerates the paper's temporal-adoption analysis (Figure 2):
// it simulates the study window, captures the Netflow trace at the hosting
// infrastructure, filters it the way the paper does, and prints the hourly
// flows/bytes series normed to the minimum with the official download
// curve overlaid — plus the release-day jump and the June-23 resurgence.
//
// Run with: go run ./examples/adoption
package main

import (
	"fmt"
	"log"

	"cwatrace/internal/core"
	"cwatrace/internal/experiments"
)

func main() {
	fmt.Println("simulating the study window (June 15-25, 2020)...")
	suite, err := experiments.RunSuite(experiments.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(core.RenderCensus(suite.Census, suite.Cfg.Scale))

	fig2, err := suite.Figure2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(core.RenderFigure2Daily(core.DailyFlows(suite.Kept)))
	fmt.Printf("release-day flow increase: %.1fx (paper: 7.5x)\n", fig2.ReleaseDayFlowRatio)
	fmt.Printf("resurgence Jun 23-25 vs Jun 20-22: %.2fx (paper: traffic re-surges with outbreak news)\n\n", fig2.ResurgenceRatio)

	// The full hourly chart is long; show release day hour by hour.
	fmt.Println("release day (June 16), hour by hour:")
	fmt.Println("hour  flows  normed  downloads[M]")
	for h := 24; h < 48; h++ {
		p := fig2.Points[h]
		fmt.Printf("%02d:00 %6.0f  %6.2f  %6.2f\n", h-24, p.Flows, p.FlowsNormed, p.DownloadsM)
	}
}
