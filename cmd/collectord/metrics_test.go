package main

import (
	"bufio"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"cwatrace/internal/ingest"
	"cwatrace/internal/store"
)

// parseExposition is a strict parser for the Prometheus text exposition
// format subset the daemon emits. It returns name -> (type, value) and
// fails the test on any format violation: samples without HELP/TYPE,
// invalid metric names, counters not ending in _total, trailing
// whitespace, or garbage lines.
func parseExposition(t *testing.T, text string) map[string]struct {
	typ   string
	value float64
} {
	t.Helper()
	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	out := make(map[string]struct {
		typ   string
		value float64
	})
	var curHelp, curType string
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line != strings.TrimRight(line, " \t") {
			t.Fatalf("trailing whitespace in %q", line)
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || !nameRe.MatchString(parts[0]) || parts[1] == "" {
				t.Fatalf("malformed HELP line %q", line)
			}
			curHelp, curType = parts[0], ""
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || (parts[1] != "counter" && parts[1] != "gauge") {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if parts[0] != curHelp {
				t.Fatalf("TYPE for %q does not follow its HELP (last HELP: %q)", parts[0], curHelp)
			}
			curType = parts[1]
		case line == "":
			t.Fatal("blank line in exposition")
		default:
			fields := strings.Fields(line)
			if len(fields) != 2 {
				t.Fatalf("malformed sample line %q", line)
			}
			name := fields[0]
			if !nameRe.MatchString(name) {
				t.Fatalf("invalid metric name %q", name)
			}
			if name != curHelp || curType == "" {
				t.Fatalf("sample %q not preceded by its HELP and TYPE", name)
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("sample %q value: %v", name, err)
			}
			if curType == "counter" && !strings.HasSuffix(name, "_total") {
				t.Fatalf("counter %q does not end in _total", name)
			}
			if _, dup := out[name]; dup {
				t.Fatalf("duplicate sample %q", name)
			}
			out[name] = struct {
				typ   string
				value float64
			}{curType, v}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMetricsExpositionFormat(t *testing.T) {
	stats := ingest.Stats{
		Packets: 10, Records: 250, Processed: 240, DroppedRecords: 10,
		DroppedBatches: 1, DecodeErrors: 2, SocketErrors: 3, SinkErrors: 4,
		Sources: 5, SeqGaps: 6, SeqLost: 7, SeqReordered: 8,
	}
	sm := store.Metrics{
		Segments: 2, WALBytes: 4096, Frames: 3, TailRecords: 17,
		AppendedRecords: 240, Checkpoints: 3, CompactedFrames: 1,
		RecoveredWALRecords: 9, RecoveredFrames: 2,
		LastCheckpoint: time.Now().Add(-90 * time.Second),
	}
	var sb strings.Builder
	if err := writeMetrics(&sb, append(ingestMetrics(stats), storeMetrics(sm, time.Now())...)); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.HasSuffix(text, "\n") {
		t.Fatal("exposition does not end in a newline")
	}
	samples := parseExposition(t, text)

	// Spot-check values and the store gauges the ISSUE names.
	checks := map[string]float64{
		"ingest_packets_total":           10,
		"ingest_records_total":           250,
		"ingest_records_processed_total": 240,
		"ingest_sink_errors_total":       4,
		"ingest_sources":                 5,
		"store_segments":                 2,
		"store_wal_bytes":                4096,
		"store_frames":                   3,
		"store_tail_records":             17,
		"store_appended_records_total":   240,
	}
	for name, want := range checks {
		got, ok := samples[name]
		if !ok {
			t.Fatalf("sample %q missing", name)
		}
		if got.value != want {
			t.Fatalf("%s = %v, want %v", name, got.value, want)
		}
	}
	age, ok := samples["store_last_checkpoint_age_seconds"]
	if !ok || age.typ != "gauge" || age.value < 89 || age.value > 120 {
		t.Fatalf("store_last_checkpoint_age_seconds = %+v, want a ~90s gauge", age)
	}
}

// TestMetricsWithoutStoreOmitsStoreGauges pins the non-durable daemon's
// exposition: ingest metrics only, still well-formed.
func TestMetricsWithoutStoreOmitsStoreGauges(t *testing.T) {
	var sb strings.Builder
	if err := writeMetrics(&sb, ingestMetrics(ingest.Stats{})); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, sb.String())
	for name := range samples {
		if strings.HasPrefix(name, "store_") {
			t.Fatalf("store gauge %q emitted without a store", name)
		}
	}
	if _, ok := samples["ingest_packets_total"]; !ok {
		t.Fatal("ingest_packets_total missing")
	}
}
