package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"net/netip"

	"cwatrace/internal/core"
	"cwatrace/internal/entime"
	"cwatrace/internal/ingest"
	"cwatrace/internal/netflow"
	"cwatrace/internal/obs"
	"cwatrace/internal/store"
	"cwatrace/internal/streaming"
)

// scrape fetches /metrics from ts, requires the Prometheus content
// type, and returns the page parsed by the strict exposition linter —
// the parser-enforced contract: HELP/TYPE before every sample, counter
// names ending in _total, no duplicate series, no trailing whitespace.
func scrape(t *testing.T, ts *httptest.Server) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exp, errs := obs.Lint(string(body))
	for _, e := range errs {
		t.Errorf("exposition lint: %v", e)
	}
	return exp
}

// daemonServer assembles the collectord composition under test: a real
// loopback pipeline, optionally a durable store, one shared registry,
// and the API server exactly as main() wires it.
func daemonServer(t *testing.T, durable bool) (*httptest.Server, *store.Store) {
	t.Helper()
	o := newObsStack(256, 500*time.Millisecond, 64, 512)
	reg := o.reg
	acfg := streaming.Config{WindowHours: 48, TopK: 5}
	icfg := ingest.Config{
		Listen:    []string{"127.0.0.1:0"},
		Workers:   2,
		Analytics: acfg,
		Metrics:   reg,
	}
	var st *store.Store
	if durable {
		var err error
		st, err = store.Open(t.TempDir(), store.Options{Analytics: acfg, Sync: store.SyncNever, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		icfg.Sink = st
		icfg.SinkOnly = true
	}
	p, err := ingest.New(icfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	srv := newAPIServer(p, st, o, false, 0, false)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, st
}

// TestMetricsExpositionFormat scrapes the durable daemon's /metrics and
// enforces the format contract plus the frozen metric names: the
// registry port kept every pre-registry name byte-identical, so
// dashboards and the crash drill's waitForMetric keep working.
func TestMetricsExpositionFormat(t *testing.T) {
	ts, st := daemonServer(t, true)
	f := core.DefaultFilter()
	if err := st.Append([]netflow.Record{{
		Key: netflow.Key{
			Src:     f.ServerPrefixes[0].Addr(),
			Dst:     netip.AddrFrom4([4]byte{100, 64, 0, 9}),
			SrcPort: netflow.PortHTTPS,
			DstPort: 50000,
			Proto:   netflow.ProtoTCP,
		},
		Packets:  1,
		Bytes:    100,
		First:    entime.StudyStart,
		Last:     entime.StudyStart.Add(time.Second),
		Exporter: "ISP/BE-000",
	}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	exp := scrape(t, ts)

	counters := []string{
		"ingest_packets_total", "ingest_records_total",
		"ingest_records_processed_total", "ingest_records_dropped_total",
		"ingest_batches_dropped_total", "ingest_decode_errors_total",
		"ingest_socket_errors_total", "ingest_sink_errors_total",
		"ingest_seq_gaps_total", "ingest_seq_lost_total", "ingest_seq_reordered_total",
		"store_appended_records_total", "store_checkpoints_total",
		"store_compacted_frames_total", "store_recovered_wal_records_total",
		"store_recovered_frames_total",
	}
	for _, name := range counters {
		if typ := exp.Types[name]; typ != "counter" {
			t.Errorf("%s: type %q, want counter", name, typ)
		}
		if _, ok := exp.Value(name, ""); !ok {
			t.Errorf("%s: sample missing", name)
		}
	}
	gauges := []string{
		"ingest_sources", "ingest_watermark_timestamp_seconds",
		"store_segments", "store_wal_bytes", "store_frames",
		"store_tail_records", "store_last_checkpoint_age_seconds",
		"store_watermark_timestamp_seconds",
	}
	for _, name := range gauges {
		if typ := exp.Types[name]; typ != "gauge" {
			t.Errorf("%s: type %q, want gauge", name, typ)
		}
	}
	if v, ok := exp.Value("store_checkpoints_total", ""); !ok || v != 1 {
		t.Fatalf("store_checkpoints_total = %v (found=%t), want 1", v, ok)
	}
	if v, ok := exp.Value("store_watermark_timestamp_seconds", ""); !ok || v != float64(entime.StudyStart.UnixNano())/1e9 {
		t.Fatalf("store_watermark_timestamp_seconds = %v (found=%t), want the appended record's First", v, ok)
	}
	if _, ok := exp.Value("store_fsync_seconds_count", ""); !ok {
		t.Error("store_fsync_seconds histogram missing")
	}
	if _, ok := exp.Value("api_inflight_requests", ""); !ok {
		t.Error("api_inflight_requests missing — the API layer is uninstrumented")
	}
}

// TestMetricsWithoutStoreOmitsStoreGauges pins the non-durable daemon's
// exposition: ingest and API metrics only, still well-formed.
func TestMetricsWithoutStoreOmitsStoreGauges(t *testing.T) {
	ts, _ := daemonServer(t, false)
	exp := scrape(t, ts)
	for name := range exp.Types {
		if strings.HasPrefix(name, "store_") {
			t.Fatalf("store metric %q emitted without a store", name)
		}
	}
	if _, ok := exp.Value("ingest_packets_total", ""); !ok {
		t.Fatal("ingest_packets_total missing")
	}
}

// TestMetricsNamesStableAcrossRestart rebuilds the daemon composition
// and requires the same series set in the same order — the byte-stable
// name contract a restart must not break.
func TestMetricsNamesStableAcrossRestart(t *testing.T) {
	names := func() []string {
		ts, _ := daemonServer(t, true)
		exp := scrape(t, ts)
		out := make([]string, 0, len(exp.Samples))
		for _, s := range exp.Samples {
			out = append(out, s.Name+s.Labels)
		}
		return out
	}
	a, b := names(), names()
	if len(a) != len(b) {
		t.Fatalf("series count changed across restart: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("series %d changed across restart: %q vs %q", i, a[i], b[i])
		}
	}
}
