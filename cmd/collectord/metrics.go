package main

// The /metrics endpoint in proper Prometheus text exposition format:
// every sample is preceded by its # HELP and # TYPE lines, counter names
// end in _total, and no line carries trailing whitespace. The format is
// pinned by a parser-based test (metrics_test.go), so a scraper like
// prometheus/common's expfmt can always consume it.

import (
	"fmt"
	"io"
	"time"

	"cwatrace/internal/ingest"
	"cwatrace/internal/store"
)

// metric is one fully-described sample.
type metric struct {
	name  string
	typ   string // "counter" or "gauge"
	help  string
	value float64
}

// ingestMetrics renders the pipeline counters.
func ingestMetrics(s ingest.Stats) []metric {
	return []metric{
		{"ingest_packets_total", "counter", "Decoded NFv9 export packets.", float64(s.Packets)},
		{"ingest_records_total", "counter", "Flow records decoded from export packets.", float64(s.Records)},
		{"ingest_records_processed_total", "counter", "Records ingested into analytics shards.", float64(s.Processed)},
		{"ingest_records_dropped_total", "counter", "Records dropped under backpressure.", float64(s.DroppedRecords)},
		{"ingest_batches_dropped_total", "counter", "Batches dropped under backpressure.", float64(s.DroppedBatches)},
		{"ingest_decode_errors_total", "counter", "Datagrams the NFv9 decoder rejected.", float64(s.DecodeErrors)},
		{"ingest_socket_errors_total", "counter", "Transient socket receive errors retried.", float64(s.SocketErrors)},
		{"ingest_sink_errors_total", "counter", "Failed durable-sink appends and flushes.", float64(s.SinkErrors)},
		{"ingest_sources", "gauge", "Distinct exporter observation domains seen.", float64(s.Sources)},
		{"ingest_seq_gaps_total", "counter", "Export sequence gaps across all sources.", float64(s.SeqGaps)},
		{"ingest_seq_lost_total", "counter", "Export packets lost per the sequence audit.", float64(s.SeqLost)},
		{"ingest_seq_reordered_total", "counter", "Reordered export packets across all sources.", float64(s.SeqReordered)},
	}
}

// storeMetrics renders the durable-store gauges.
func storeMetrics(m store.Metrics, now time.Time) []metric {
	return []metric{
		{"store_segments", "gauge", "Live WAL segment files (sealed plus active).", float64(m.Segments)},
		{"store_wal_bytes", "gauge", "Total size of live WAL segments on disk.", float64(m.WALBytes)},
		{"store_frames", "gauge", "Checkpoint frames on disk.", float64(m.Frames)},
		{"store_tail_records", "gauge", "Records appended since the last checkpoint.", float64(m.TailRecords)},
		{"store_last_checkpoint_age_seconds", "gauge", "Seconds since the last checkpoint.", now.Sub(m.LastCheckpoint).Seconds()},
		{"store_appended_records_total", "counter", "Records appended to the WAL this process.", float64(m.AppendedRecords)},
		{"store_checkpoints_total", "counter", "Checkpoints taken this process.", float64(m.Checkpoints)},
		{"store_compacted_frames_total", "counter", "Frame pairs folded by compaction.", float64(m.CompactedFrames)},
		{"store_recovered_wal_records_total", "counter", "WAL records replayed during recovery.", float64(m.RecoveredWALRecords)},
		{"store_recovered_frames_total", "counter", "Checkpoint frames loaded during recovery.", float64(m.RecoveredFrames)},
	}
}

// writeMetrics emits the samples in Prometheus text exposition format.
func writeMetrics(w io.Writer, metrics []metric) error {
	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n",
			m.name, m.help, m.name, m.typ, m.name, m.value); err != nil {
			return err
		}
	}
	return nil
}
