package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"cwatrace/internal/experiments"
	"cwatrace/internal/ingest"
	"cwatrace/internal/sim"
)

// collectordProc is one running collectord child process.
type collectordProc struct {
	cmd *exec.Cmd

	mu    sync.Mutex
	lines []string
}

// launchCollectord starts the built daemon with its stdout captured
// line by line; callers poll linesCopy (or awaitLine) for the
// announcement prefixes they care about.
func launchCollectord(t *testing.T, bin string, args ...string) *collectordProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &collectordProc{cmd: cmd}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			p.mu.Lock()
			p.lines = append(p.lines, sc.Text())
			p.mu.Unlock()
		}
		_, _ = io.Copy(io.Discard, stdout)
	}()
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	return p
}

// awaitLine polls the captured stdout until a line with the prefix
// appears, returning the trimmed remainder ("" on timeout).
func (p *collectordProc) awaitLine(prefix string, timeout time.Duration) string {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		p.mu.Lock()
		for _, line := range p.lines {
			if rest, ok := strings.CutPrefix(line, prefix); ok {
				p.mu.Unlock()
				return strings.TrimSpace(rest)
			}
		}
		p.mu.Unlock()
		time.Sleep(20 * time.Millisecond)
	}
	return ""
}

// startCollectord launches the built daemon and waits until it prints
// its bound UDP and HTTP addresses.
func startCollectord(t *testing.T, bin string, args ...string) (*collectordProc, string, string) {
	t.Helper()
	p := launchCollectord(t, bin, args...)
	udp := p.awaitLine("collectord: ingesting NFv9 on ", 20*time.Second)
	httpAddr := strings.TrimSuffix(p.awaitLine("collectord: live state on http://", 20*time.Second), "/snapshot")
	if udp == "" || httpAddr == "" {
		t.Fatalf("collectord never announced its addresses; stdout so far: %q", p.linesCopy())
	}
	return p, udp, httpAddr
}

func (p *collectordProc) linesCopy() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.lines...)
}

// snapshotBody is the /snapshot response shape the smoke test compares.
type snapshotBody struct {
	Stats    map[string]any `json:"stats"`
	Snapshot any            `json:"snapshot"`
}

// waitForMetric polls /metrics until the named sample reaches at least
// want.
func waitForMetric(t *testing.T, addr, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			for _, line := range strings.Split(string(body), "\n") {
				fields := strings.Fields(line)
				if len(fields) == 2 && fields[0] == name {
					var v float64
					if _, err := fmt.Sscanf(fields[1], "%g", &v); err == nil && v >= want {
						return
					}
				}
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("metric %s never reached %g", name, want)
}

func getSnapshot(t *testing.T, addr string) (snapshotBody, bool) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/snapshot")
	if err != nil {
		return snapshotBody{}, false
	}
	defer resp.Body.Close()
	var body snapshotBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return snapshotBody{}, false
	}
	return body, true
}

// TestCrashRecoverySmoke is the end-to-end SIGKILL drill behind `make
// crash-smoke` and the CI crash-recovery step: start a durable
// collector, stream half a quick-sim trace into it over real UDP,
// SIGKILL it mid-capture (no drain, no final checkpoint), restart it on
// the same data dir and require the recovered /snapshot to match the
// pre-kill accounting exactly.
func TestCrashRecoverySmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "collectord")
	build := exec.Command("go", "build", "-o", bin, "cwatrace/cmd/collectord")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building collectord: %v", err)
	}

	cfg := experiments.QuickConfig()
	cfg.Scale *= 3 // demo-quick sized trace
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	quarter := res.Records[:len(res.Records)/4]
	second := res.Records[len(res.Records)/4 : len(res.Records)/2]

	dataDir := t.TempDir()
	args := []string{
		"-listen", "127.0.0.1:0",
		"-http", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-checkpoint-interval", "1500ms",
		"-workers", "4",
	}
	proc, udp, httpAddr := startCollectord(t, bin, args...)

	// First burst, then wait for the periodic checkpoint to fold it, then
	// a second burst that (usually) still sits in the WAL tail when the
	// kill lands — so recovery exercises frames AND WAL replay. The
	// invariant holds either way; the split only widens the coverage.
	if _, err := ingest.Replay([]string{udp}, quarter, ingest.ReplayConfig{
		Sources:          4,
		RecordsPerSecond: 60000,
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	waitForMetric(t, httpAddr, "store_frames", 1)
	if _, err := ingest.Replay([]string{udp}, second, ingest.ReplayConfig{
		Sources:          4,
		RecordsPerSecond: 60000,
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}

	// Wait until the daemon has drained everything it received (UDP may
	// legitimately have dropped some datagrams; the invariant under test
	// is recovery, not loss-freeness).
	var preKill snapshotBody
	stable := 0
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && stable < 3 {
		body, ok := getSnapshot(t, httpAddr)
		if !ok {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if reflect.DeepEqual(body.Snapshot, preKill.Snapshot) {
			stable++
		} else {
			stable = 0
		}
		preKill = body
		time.Sleep(100 * time.Millisecond)
	}
	if stable < 3 {
		t.Fatal("snapshot never stabilized after the replay")
	}
	if preKill.Snapshot == nil {
		t.Fatal("no pre-kill snapshot captured")
	}

	// SIGKILL: no drain, no checkpoint, no flush. Write-through appends
	// mean the OS still has every accounted byte.
	if err := proc.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = proc.cmd.Process.Wait()

	// Restart on the same data dir, with no new traffic.
	proc2, _, httpAddr2 := startCollectord(t, bin, args...)
	defer func() {
		_ = proc2.cmd.Process.Kill()
	}()

	var recovered snapshotBody
	ok := false
	deadline = time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && !ok {
		recovered, ok = getSnapshot(t, httpAddr2)
		if !ok {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !ok {
		t.Fatal("restarted collectord never served /snapshot")
	}

	if !reflect.DeepEqual(recovered.Snapshot, preKill.Snapshot) {
		pre, _ := json.Marshal(preKill.Snapshot)
		post, _ := json.Marshal(recovered.Snapshot)
		t.Fatalf("recovered snapshot differs from pre-kill accounting\n pre: %.400s\npost: %.400s", pre, post)
	}

	// The recovery really came from disk: the daemon logged what it
	// rebuilt, and the WAL/checkpoint machinery saw the records.
	found := false
	for _, line := range proc2.linesCopy() {
		if strings.Contains(line, "recovered") {
			found = true
			t.Logf("restart: %s", line)
		}
	}
	if !found {
		t.Fatal("restarted collectord printed no recovery summary")
	}
	fmt.Println("crash smoke: recovered snapshot matches pre-kill accounting")
}
