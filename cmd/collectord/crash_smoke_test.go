package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"cwatrace/internal/core"
	"cwatrace/internal/entime"
	"cwatrace/internal/experiments"
	"cwatrace/internal/ingest"
	"cwatrace/internal/netflow"
	"cwatrace/internal/sim"
	"cwatrace/internal/store"
	"cwatrace/internal/streaming"
	"cwatrace/internal/tier"
)

// collectordProc is one running collectord child process.
type collectordProc struct {
	cmd *exec.Cmd

	mu    sync.Mutex
	lines []string
}

// launchCollectord starts the built daemon with its stdout captured
// line by line; callers poll linesCopy (or awaitLine) for the
// announcement prefixes they care about.
func launchCollectord(t *testing.T, bin string, args ...string) *collectordProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &collectordProc{cmd: cmd}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			p.mu.Lock()
			p.lines = append(p.lines, sc.Text())
			p.mu.Unlock()
		}
		_, _ = io.Copy(io.Discard, stdout)
	}()
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	return p
}

// awaitLine polls the captured stdout until a line with the prefix
// appears, returning the trimmed remainder ("" on timeout).
func (p *collectordProc) awaitLine(prefix string, timeout time.Duration) string {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		p.mu.Lock()
		for _, line := range p.lines {
			if rest, ok := strings.CutPrefix(line, prefix); ok {
				p.mu.Unlock()
				return strings.TrimSpace(rest)
			}
		}
		p.mu.Unlock()
		time.Sleep(20 * time.Millisecond)
	}
	return ""
}

// startCollectord launches the built daemon and waits until it prints
// its bound UDP and HTTP addresses.
func startCollectord(t *testing.T, bin string, args ...string) (*collectordProc, string, string) {
	t.Helper()
	p := launchCollectord(t, bin, args...)
	udp := p.awaitLine("collectord: ingesting NFv9 on ", 20*time.Second)
	httpAddr := strings.TrimSuffix(p.awaitLine("collectord: live state on http://", 20*time.Second), "/snapshot")
	if udp == "" || httpAddr == "" {
		t.Fatalf("collectord never announced its addresses; stdout so far: %q", p.linesCopy())
	}
	return p, udp, httpAddr
}

func (p *collectordProc) linesCopy() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.lines...)
}

// snapshotBody is the /snapshot response shape the smoke test compares.
type snapshotBody struct {
	Stats    map[string]any `json:"stats"`
	Snapshot any            `json:"snapshot"`
}

// waitForMetric polls /metrics until the named sample reaches at least
// want.
func waitForMetric(t *testing.T, addr, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			for _, line := range strings.Split(string(body), "\n") {
				fields := strings.Fields(line)
				if len(fields) == 2 && fields[0] == name {
					var v float64
					if _, err := fmt.Sscanf(fields[1], "%g", &v); err == nil && v >= want {
						return
					}
				}
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("metric %s never reached %g", name, want)
}

func getSnapshot(t *testing.T, addr string) (snapshotBody, bool) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/snapshot")
	if err != nil {
		return snapshotBody{}, false
	}
	defer resp.Body.Close()
	var body snapshotBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return snapshotBody{}, false
	}
	return body, true
}

// TestCrashRecoverySmoke is the end-to-end SIGKILL drill behind `make
// crash-smoke` and the CI crash-recovery step: start a durable
// collector, stream half a quick-sim trace into it over real UDP,
// SIGKILL it mid-capture (no drain, no final checkpoint), restart it on
// the same data dir and require the recovered /snapshot to match the
// pre-kill accounting exactly.
func TestCrashRecoverySmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "collectord")
	build := exec.Command("go", "build", "-o", bin, "cwatrace/cmd/collectord")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building collectord: %v", err)
	}

	cfg := experiments.QuickConfig()
	cfg.Scale *= 3 // demo-quick sized trace
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	quarter := res.Records[:len(res.Records)/4]
	second := res.Records[len(res.Records)/4 : len(res.Records)/2]

	dataDir := t.TempDir()
	args := []string{
		"-listen", "127.0.0.1:0",
		"-http", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-checkpoint-interval", "1500ms",
		"-workers", "4",
	}
	proc, udp, httpAddr := startCollectord(t, bin, args...)

	// First burst, then wait for the periodic checkpoint to fold it, then
	// a second burst that (usually) still sits in the WAL tail when the
	// kill lands — so recovery exercises frames AND WAL replay. The
	// invariant holds either way; the split only widens the coverage.
	if _, err := ingest.Replay([]string{udp}, quarter, ingest.ReplayConfig{
		Sources:          4,
		RecordsPerSecond: 60000,
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	waitForMetric(t, httpAddr, "store_frames", 1)
	if _, err := ingest.Replay([]string{udp}, second, ingest.ReplayConfig{
		Sources:          4,
		RecordsPerSecond: 60000,
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}

	// Wait until the daemon has drained everything it received (UDP may
	// legitimately have dropped some datagrams; the invariant under test
	// is recovery, not loss-freeness).
	var preKill snapshotBody
	stable := 0
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && stable < 3 {
		body, ok := getSnapshot(t, httpAddr)
		if !ok {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if reflect.DeepEqual(body.Snapshot, preKill.Snapshot) {
			stable++
		} else {
			stable = 0
		}
		preKill = body
		time.Sleep(100 * time.Millisecond)
	}
	if stable < 3 {
		t.Fatal("snapshot never stabilized after the replay")
	}
	if preKill.Snapshot == nil {
		t.Fatal("no pre-kill snapshot captured")
	}

	// SIGKILL: no drain, no checkpoint, no flush. Write-through appends
	// mean the OS still has every accounted byte.
	if err := proc.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = proc.cmd.Process.Wait()

	// Restart on the same data dir, with no new traffic.
	proc2, _, httpAddr2 := startCollectord(t, bin, args...)
	defer func() {
		_ = proc2.cmd.Process.Kill()
	}()

	var recovered snapshotBody
	ok := false
	deadline = time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && !ok {
		recovered, ok = getSnapshot(t, httpAddr2)
		if !ok {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !ok {
		t.Fatal("restarted collectord never served /snapshot")
	}

	if !reflect.DeepEqual(recovered.Snapshot, preKill.Snapshot) {
		pre, _ := json.Marshal(preKill.Snapshot)
		post, _ := json.Marshal(recovered.Snapshot)
		t.Fatalf("recovered snapshot differs from pre-kill accounting\n pre: %.400s\npost: %.400s", pre, post)
	}

	// The recovery really came from disk: the daemon logged what it
	// rebuilt, and the WAL/checkpoint machinery saw the records.
	found := false
	for _, line := range proc2.linesCopy() {
		if strings.Contains(line, "recovered") {
			found = true
			t.Logf("restart: %s", line)
		}
	}
	if !found {
		t.Fatal("restarted collectord printed no recovery summary")
	}
	fmt.Println("crash smoke: recovered snapshot matches pre-kill accounting")
}

// tierDrillRecord fabricates a kept record in hour h from prefix-id id
// (each id owns its own /24), for the multi-day tier store the drill
// builds.
func tierDrillRecord(h int64, id int) netflow.Record {
	at := entime.StudyStart.Add(time.Duration(h) * time.Hour)
	return netflow.Record{
		Key: netflow.Key{
			Src:     core.DefaultFilter().ServerPrefixes[0].Addr(),
			Dst:     netip.AddrFrom4([4]byte{10, byte(id >> 8), byte(id), 1}),
			SrcPort: netflow.PortHTTPS,
			DstPort: uint16(40000 + id%1000),
			Proto:   netflow.ProtoTCP,
		},
		Packets:  3,
		Bytes:    600,
		First:    at,
		Last:     at.Add(time.Second),
		Exporter: "ISP/BE-000",
	}
}

// longHorizonComparable extracts the semantic fields of a long-horizon
// answer for equality checks: everything except the tier_frames/
// raw_frames source counts, which legitimately shift when the planner
// substitutes raw residual frames for a lost tier frame (the aggregates
// must not).
func longHorizonComparable(t *testing.T, v any) map[string]any {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "tier_frames")
	delete(m, "raw_frames")
	return m
}

// queryDayAnswer fetches /api/v1/query?resolution=day over the full
// history from a served collectord and returns the long-horizon block.
func queryDayAnswer(t *testing.T, addr string) (map[string]any, bool) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/api/v1/query?resolution=day")
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	var body struct {
		Resolution  string         `json:"resolution"`
		LongHorizon map[string]any `json:"long_horizon"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || resp.StatusCode != http.StatusOK {
		return nil, false
	}
	if body.Resolution != "day" || body.LongHorizon == nil {
		t.Fatalf("day query answered resolution %q, long_horizon nil=%v", body.Resolution, body.LongHorizon == nil)
	}
	delete(body.LongHorizon, "tier_frames")
	delete(body.LongHorizon, "raw_frames")
	return body.LongHorizon, true
}

// TestTierCrashSmoke is the long-horizon half of the crash drill: a
// month of daily-checkpointed history with tier folding on, crashed in
// the one window a SIGKILL mid-tier-fold can leave behind — the fold's
// temp file written but the durable rename not yet landed — then served
// by the real daemon, SIGKILLed again mid-serving, and restarted. The
// invariants: no raw checkpoint frame is ever deleted before the tier
// frame derived from it is durable (so the crash state still holds
// every record), and the full-span day-resolution answer is unchanged
// through every reopen — the planner stitches raw residual frames over
// the lost tier frame and re-derives identical aggregates.
//
// The mid-fold disk state is constructed deterministically (delete the
// newest day tier frame, leave a torn .tmp in its place) rather than
// racing a real SIGKILL against a microsecond fold window; the daemon
// SIGKILL below keeps a real kill in the loop.
func TestTierCrashSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "collectord")
	build := exec.Command("go", "build", "-o", bin, "cwatrace/cmd/collectord")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building collectord: %v", err)
	}

	// A month of history, one checkpoint per day, tier folding on: day
	// frames for every closed day, week frames over them.
	const days = 30
	dataDir := t.TempDir()
	st, err := store.Open(dataDir, store.Options{
		Analytics: streaming.Config{WindowHours: days*24 + 48, TopK: 10},
		Sync:      store.SyncNever,
		Tier:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < days; d++ {
		var batch []netflow.Record
		for hh := 0; hh < 3; hh++ {
			for c := 0; c < 4; c++ {
				batch = append(batch, tierDrillRecord(int64(d*24+hh*8), d*4+c))
			}
		}
		if err := st.Append(batch); err != nil {
			t.Fatal(err)
		}
		if err := st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	m := st.Metrics()
	if m.TierFramesDay == 0 || m.TierFramesWeek == 0 {
		t.Fatalf("tier folding never ran: %d day / %d week frames", m.TierFramesDay, m.TierFramesWeek)
	}
	expectedRes, err := st.QueryResolution(time.Time{}, time.Time{}, tier.ResolutionDay)
	if err != nil {
		t.Fatal(err)
	}
	if expectedRes.LongHorizon == nil {
		t.Fatal("pre-crash day query carried no long-horizon answer")
	}
	expected := longHorizonComparable(t, expectedRes.LongHorizon)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The raw checkpoint frames on disk before the crash: tier folds are
	// additive, so every one of them must still be there afterwards.
	rawBefore, err := filepath.Glob(filepath.Join(dataDir, "ckpt-*.ck"))
	if err != nil {
		t.Fatal(err)
	}

	// Construct the mid-fold crash state: the newest day tier frame's
	// rename never landed, its torn temp file did.
	dayFrames, err := filepath.Glob(filepath.Join(dataDir, "tier-d-*.tf"))
	if err != nil || len(dayFrames) == 0 {
		t.Fatalf("day tier frames on disk: %d (%v)", len(dayFrames), err)
	}
	sort.Strings(dayFrames)
	newest := dayFrames[len(dayFrames)-1]
	torn, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest+".tmp", torn[:len(torn)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(newest); err != nil {
		t.Fatal(err)
	}
	rawAfter, err := filepath.Glob(filepath.Join(dataDir, "ckpt-*.ck"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rawBefore, rawAfter) {
		t.Fatalf("raw frame set changed across the simulated crash:\n before %v\n after %v", rawBefore, rawAfter)
	}

	// Reopen through the real daemon and require the identical answer.
	args := []string{
		"-listen", "127.0.0.1:0",
		"-http", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-checkpoint-interval", "1s",
		// The stored meta pins the analytics window; the daemon must be
		// configured to match or store.Open refuses the dir.
		"-window-hours", fmt.Sprint(days*24 + 48),
	}
	proc, _, httpAddr := startCollectord(t, bin, args...)
	var got map[string]any
	ok := false
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && !ok {
		got, ok = queryDayAnswer(t, httpAddr)
		if !ok {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !ok {
		t.Fatal("restarted collectord never served the day-resolution query")
	}
	if !reflect.DeepEqual(got, expected) {
		gb, _ := json.Marshal(got)
		eb, _ := json.Marshal(expected)
		t.Fatalf("post-crash day answer differs:\n got %.600s\nwant %.600s", gb, eb)
	}

	// A real SIGKILL mid-serving (the 1s checkpoint ticker may be mid-
	// fold re-deriving the lost frame), then one more restart: still the
	// same answer.
	if err := proc.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = proc.cmd.Process.Wait()
	proc2, _, httpAddr2 := startCollectord(t, bin, args...)
	defer func() { _ = proc2.cmd.Process.Kill() }()
	ok = false
	deadline = time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && !ok {
		got, ok = queryDayAnswer(t, httpAddr2)
		if !ok {
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !ok {
		t.Fatal("twice-restarted collectord never served the day-resolution query")
	}
	if !reflect.DeepEqual(got, expected) {
		gb, _ := json.Marshal(got)
		eb, _ := json.Marshal(expected)
		t.Fatalf("second post-crash day answer differs:\n got %.600s\nwant %.600s", gb, eb)
	}
	fmt.Println("tier crash smoke: long-horizon answer survived a mid-fold crash and a daemon SIGKILL unchanged")
}
