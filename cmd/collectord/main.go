// Command collectord is the live collector daemon of the reproduction:
// the ISP-vantage-point process that receives NFv9 export datagrams from
// border routers (or the simulator acting as load generator), pushes them
// through the bounded multi-worker ingest pipeline and keeps the paper's
// analyses — hourly Figure-2 series, spike detection, top-K prefixes,
// district rollups — continuously up to date.
//
// With -data-dir the daemon is durable: every ingested batch is appended
// to a write-ahead log, the analytics state is checkpointed periodically
// (and on SIGTERM after the drain), a restart recovers the pre-crash
// state by replaying the WAL tail onto the latest checkpoints, and the
// /query endpoint serves historical time-range views merged from the
// checkpoint frames — the longitudinal analyses a purely in-memory
// collector forgets on every restart.
//
// With -shard i/N the daemon runs as one node of an N-way cluster: the
// ingest pipeline keeps only the records this shard owns under the
// 401-district partition (internal/cluster) and drops the rest (counted
// as shard_filtered, not lost). A stateless cmd/queryrouterd in front of
// the fleet merges the shards back into responses byte-identical to a
// single collector's.
//
// Live state is exposed over HTTP through the versioned analytics API
// (internal/api): typed JSON with a structured error envelope, strong
// ETags for conditional GETs (If-None-Match -> 304), gzip, compact
// encoding by default (?pretty=1 opts into indentation), field
// selection and top-K truncation:
//
//	GET /api/v1/health           200 ok / 503 draining during shutdown
//	GET /api/v1/stats            pipeline counters + store gauges
//	GET /api/v1/snapshot         merged analytics snapshot
//	    ?fields=hourly,filters,spikes,prefixes,districts  section selection
//	    ?top=N                   truncate ranked lists    ?pretty=1  indent
//	GET /api/v1/query?from=&to=  historical range (RFC 3339 or unix
//	                             seconds; both bounds optional); requires
//	                             -data-dir; same fields/top/pretty params
//	GET /metrics                 Prometheus text format
//	GET /debug/traces[?id=ID]    flight recorder: tail-sampled span traces
//	GET /debug/events            flight recorder: one-shot event ring
//
// The pre-v1 endpoints (/healthz, /snapshot, /query) remain as
// deprecated aliases over the same handlers. The /debug endpoints
// share the -http listener with /metrics; bind it to loopback or an
// internal interface, never publicly.
//
// On SIGINT/SIGTERM the daemon flips the health endpoints to 503
// draining, stops the sockets, drains every queued batch, checkpoints
// the store (when durable) and prints the final snapshot summary.
//
// Usage:
//
//	collectord [-listen 127.0.0.1:2055[,addr2]] [-http 127.0.0.1:8055]
//	           [-workers N] [-geodb geodb.jsonl] [-window-hours H] [-topk K]
//	           [-shard i/N] [-data-dir DIR] [-fsync always|interval|never]
//	           [-fsync-interval D] [-checkpoint-interval D]
//	           [-segment-bytes N] [-http-log] [-pprof] [-slow-query D]
//	           [-trace-ring N] [-trace-slow D] [-trace-sample N]
//	           [-event-ring N]
//
//	collectord -demo [-quick] [-serve]
//
// Demo mode is the self-contained loopback smoke run behind
// `make ingest-demo`: it runs the simulator, replays the trace through an
// exporter pool into its own pipeline over loopback UDP, and checks the
// streaming aggregates against the batch internal/core analysis. With
// -serve the daemon then keeps serving the demo state over HTTP until
// SIGTERM — the self-contained target the api-smoke CI step curls.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"reflect"
	"strings"
	"syscall"
	"time"

	"cwatrace/internal/api"
	"cwatrace/internal/cluster"
	"cwatrace/internal/core"
	"cwatrace/internal/entime"
	"cwatrace/internal/experiments"
	"cwatrace/internal/geo"
	"cwatrace/internal/geodb"
	"cwatrace/internal/ingest"
	"cwatrace/internal/obs"
	"cwatrace/internal/sim"
	"cwatrace/internal/store"
	"cwatrace/internal/streaming"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:2055", "comma-separated UDP listen addresses")
		httpAddr    = flag.String("http", "127.0.0.1:8055", "HTTP snapshot/metrics address (empty disables)")
		workers     = flag.Int("workers", 0, "pipeline workers / analytics shards (0 = all CPUs)")
		shardBuffer = flag.Int("shard-buffer", 0, "per-shard channel capacity in batches (0 = default)")
		geoPath     = flag.String("geodb", "", "geolocation sidecar enabling per-district rollups")
		windowHours = flag.Int("window-hours", entime.StudyHours()+24, "sliding window length in hours")
		topK        = flag.Int("topk", 10, "active-prefix leaderboard size")
		shard       = flag.String("shard", "", "cluster shard assignment i/N (e.g. 0/3): keep only this node's records")
		demo        = flag.Bool("demo", false, "self-contained sim -> exporter -> pipeline loopback run")
		quick       = flag.Bool("quick", false, "smaller demo workload (CI smoke mode)")
		serve       = flag.Bool("serve", false, "with -demo: keep serving the demo state over HTTP after verification")
		httpLog     = flag.Bool("http-log", false, "log one access line per HTTP request")
		pprofOn     = flag.Bool("pprof", false, "mount /debug/pprof on the HTTP server")
		slowQuery   = flag.Duration("slow-query", 0, "log any request at least this slow (0 disables)")

		traceRing   = flag.Int("trace-ring", 256, "flight-recorder trace ring capacity (0 disables span tracing)")
		traceSlow   = flag.Duration("trace-slow", 500*time.Millisecond, "tail-sampling slow threshold: keep any trace at least this slow (negative disables the slow rule)")
		traceSample = flag.Int("trace-sample", 64, "keep 1-in-N healthy traces as baseline (0 disables)")
		eventRing   = flag.Int("event-ring", 512, "flight-recorder event ring capacity (0 disables events)")

		dataDir      = flag.String("data-dir", "", "durable store directory (enables WAL, checkpoints and /query)")
		fsyncPolicy  = flag.String("fsync", "interval", "WAL fsync policy: always, interval or never")
		fsyncEvery   = flag.Duration("fsync-interval", time.Second, "fsync cadence under -fsync=interval")
		ckptEvery    = flag.Duration("checkpoint-interval", 5*time.Minute, "checkpoint/compaction cadence (0 disables the ticker)")
		tierOn       = flag.Bool("tier", true, "fold long-horizon day/week tier frames at checkpoint time (enables resolution=day|week|auto queries)")
		segmentBytes = flag.Int64("segment-bytes", 4<<20, "WAL segment rotation size in bytes")
	)
	flag.Parse()

	// One observability stack for whichever mode runs below: the
	// registry, the flight recorder's trace/event rings, the SIGQUIT
	// crash dump and the panic dump on the main goroutine.
	o := newObsStack(*traceRing, *traceSlow, *traceSample, *eventRing)
	obs.InstallCrashDump(o.events, os.Stderr)
	defer obs.DumpOnPanic(o.events, os.Stderr)

	acfg := streaming.Config{WindowHours: *windowHours, TopK: *topK}
	if *geoPath != "" {
		f, err := os.Open(*geoPath)
		if err != nil {
			fatal("opening geodb sidecar: %v", err)
		}
		db, err := geodb.Read(f)
		f.Close()
		if err != nil {
			fatal("reading geodb sidecar: %v", err)
		}
		acfg.DB = db
		acfg.Model = geo.Germany()
	}

	if *demo {
		p, err := runDemo(acfg, *workers, *quick)
		if err != nil {
			fatal("%v", err)
		}
		if *serve {
			// The drained pipeline's state is frozen, which makes it the
			// perfect conditional-GET demo: every ETag stays valid until
			// shutdown. Serve it until SIGTERM, then shut down gracefully:
			// health flips to 503 draining while in-flight responses
			// finish.
			p.RegisterMetrics(o.reg) // safe: the demo pipeline is drained
			srv := newAPIServer(p, nil, o, *httpLog, *slowQuery, *pprofOn)
			ln, err := net.Listen("tcp", *httpAddr)
			if err != nil {
				fatal("http: %v", err)
			}
			hs := &http.Server{Handler: srv}
			go func() {
				if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
					fatal("http: %v", err)
				}
			}()
			fmt.Printf("collectord: live state on http://%s/snapshot\n", ln.Addr())
			fmt.Printf("collectord: v1 API on http://%s/api/v1/snapshot\n", ln.Addr())
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
			<-sig
			srv.SetDraining(true)
			fmt.Println("collectord: draining")
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := hs.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "collectord: http shutdown: %v\n", err)
			}
		}
		return
	}

	// One registry spans every layer, so /metrics is a single page:
	// ingest stage timings and counters, store durability gauges, API
	// latency histograms, runtime health, flight-recorder accounting.
	icfg := ingest.Config{
		Listen:      strings.Split(*listen, ","),
		Workers:     *workers,
		ShardBuffer: *shardBuffer,
		Analytics:   acfg,
		Logf:        log.Printf,
		Metrics:     o.reg,
		Tracer:      o.tracer,
		Events:      o.events,
	}
	if *shard != "" {
		asn, err := cluster.ParseAssignment(*shard)
		if err != nil {
			fatal("%v", err)
		}
		icfg.ShardFilter = asn.Filter(acfg.DB)
		if icfg.ShardFilter != nil {
			fmt.Printf("collectord: cluster shard %s (district partition)\n", asn)
		}
	}

	var st *store.Store
	if *dataDir != "" {
		pol, err := store.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			fatal("%v", err)
		}
		st, err = store.Open(*dataDir, store.Options{
			Analytics:    acfg,
			SegmentBytes: *segmentBytes,
			Sync:         pol,
			Tier:         *tierOn,
			Metrics:      o.reg,
			Tracer:       o.tracer,
			Events:       o.events,
		})
		if err != nil {
			fatal("%v", err)
		}
		m := st.Metrics()
		fmt.Printf("collectord: store %s recovered %d checkpoint frames (%d records) and replayed %d WAL records\n",
			*dataDir, m.RecoveredFrames, m.FrameRecords, m.RecoveredWALRecords)
		if m.TruncatedBytes > 0 {
			fmt.Printf("collectord: store truncated %d torn WAL bytes from the previous crash\n", m.TruncatedBytes)
		}
		// The store owns all aggregate state; a second in-memory copy in
		// the lanes would grow without bound over a long capture.
		icfg.Sink = st
		icfg.SinkOnly = true
		if pol == store.SyncInterval {
			icfg.FlushInterval = *fsyncEvery
		}
	}

	p, err := ingest.New(icfg)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("collectord: ingesting NFv9 on %s\n", strings.Join(p.Addrs(), ", "))

	snapshot := p.Snapshot
	if st != nil {
		snapshot = st.Snapshot
	}

	var srv *api.Server
	if *httpAddr != "" {
		srv = newAPIServer(p, st, o, *httpLog, *slowQuery, *pprofOn)
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal("http: %v", err)
		}
		go func() {
			if err := http.Serve(ln, srv); err != nil {
				fatal("http: %v", err)
			}
		}()
		fmt.Printf("collectord: live state on http://%s/snapshot\n", ln.Addr())
		fmt.Printf("collectord: v1 API on http://%s/api/v1/snapshot\n", ln.Addr())
	}

	if st != nil && *ckptEvery > 0 {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for range t.C {
				if err := st.Checkpoint(); err != nil {
					fmt.Fprintf(os.Stderr, "collectord: checkpoint: %v\n", err)
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("collectord: draining")
	if srv != nil {
		// Health flips to 503 before the drain starts, so load balancers
		// stop routing while the daemon checkpoints its way down.
		srv.SetDraining(true)
	}
	if err := p.Close(); err != nil {
		fatal("drain: %v", err)
	}
	if st != nil {
		// Checkpoint-on-drain: fold everything the drain flushed into a
		// frame so the next start replays no WAL at all.
		if err := st.Checkpoint(); err != nil {
			fatal("final checkpoint: %v", err)
		}
		if err := st.Close(); err != nil {
			fatal("closing store: %v", err)
		}
	}
	printSummary(p.Stats(), snapshot())
}

// obsStack bundles the daemon's observability plumbing: the metrics
// registry plus the flight recorder's trace and event rings (nil when
// disabled by their ring-size flags; every consumer is nil-safe).
type obsStack struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	events *obs.EventRing
}

// newObsStack builds the registry, the tracer and the event ring from
// the flight-recorder flags, and registers the runtime-health gauges
// and the recorder's own accounting on the registry.
func newObsStack(traceRing int, traceSlow time.Duration, traceSample, eventRing int) obsStack {
	o := obsStack{reg: obs.NewRegistry()}
	obs.RegisterRuntimeMetrics(o.reg)
	if traceRing > 0 {
		o.tracer = obs.NewTracer(obs.TracerConfig{
			RingSize: traceRing,
			Policy:   obs.Policy{Slow: traceSlow, KeepOneIn: traceSample},
		})
		o.tracer.RegisterMetrics(o.reg)
	}
	if eventRing > 0 {
		o.events = obs.NewEventRing(eventRing)
		o.events.RegisterMetrics(o.reg)
	}
	return o
}

// newAPIServer builds the versioned analytics API over the pipeline
// and (when durable) the store, and mounts the registry-backed
// Prometheus /metrics endpoint and the flight-recorder debug endpoints
// (plus, opted in, /debug/pprof) behind the same middleware. st is nil
// without -data-dir; /api/v1/snapshot then serves the pipeline's
// in-memory state and /api/v1/query explains what is missing.
func newAPIServer(p *ingest.Pipeline, st *store.Store, o obsStack, accessLog bool, slowQuery time.Duration, pprofOn bool) *api.Server {
	cfg := api.Config{Live: p, Metrics: o.reg, SlowQuery: slowQuery, Tracer: o.tracer}
	if st != nil {
		cfg.History = st
	}
	if accessLog {
		cfg.Log = log.New(os.Stderr, "collectord: http: ", log.LstdFlags)
	}
	srv, err := api.New(cfg)
	if err != nil {
		fatal("%v", err)
	}
	srv.Handle("/metrics", o.reg.Handler())
	// The debug endpoints share the metrics listener: bind -http to
	// loopback or an internal interface, never publicly.
	srv.Handle("/debug/traces", o.tracer.Handler())
	srv.Handle("/debug/events", o.events.Handler())
	if pprofOn {
		mountPprof(srv)
	}
	return srv
}

// mountPprof exposes the runtime profiles behind the shared middleware.
// Opt-in (-pprof): the endpoints reveal internals and cost CPU, so a
// production daemon keeps them off unless a human is debugging.
func mountPprof(srv *api.Server) {
	srv.Handle("/debug/pprof/", http.HandlerFunc(pprof.Index))
	srv.Handle("/debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline))
	srv.Handle("/debug/pprof/profile", http.HandlerFunc(pprof.Profile))
	srv.Handle("/debug/pprof/symbol", http.HandlerFunc(pprof.Symbol))
	srv.Handle("/debug/pprof/trace", http.HandlerFunc(pprof.Trace))
}

// runDemo is the loopback smoke run: simulate, export, ingest, verify.
// It returns the drained pipeline so -serve can keep exposing its
// state.
func runDemo(acfg streaming.Config, workers int, quick bool) (*ingest.Pipeline, error) {
	cfg := experiments.QuickConfig()
	if quick {
		cfg.Scale *= 3 // fewer devices, smaller trace
	}
	fmt.Printf("demo: simulating the study window (scale 1:%d)\n", cfg.Scale)
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	acfg.DB = res.GeoDB
	acfg.Model = res.Model
	if acfg.WindowHours < entime.StudyHours()+24 {
		acfg.WindowHours = entime.StudyHours() + 24
	}

	// UDP makes no delivery promises even on loopback: retry a lossy
	// replay on a fresh pipeline rather than skipping verification — the
	// demo's whole point (and its CI role) is the exact-match check.
	var (
		p       *ingest.Pipeline
		stats   ingest.Stats
		snap    *streaming.Snapshot
		sources int
	)
	for attempt := 1; ; attempt++ {
		var err error
		p, err = ingest.New(ingest.Config{
			Listen:      []string{"127.0.0.1:0"},
			Workers:     workers,
			ShardBuffer: 4096,
			Analytics:   acfg,
		})
		if err != nil {
			return nil, err
		}
		fmt.Printf("demo: replaying %d records over NFv9/UDP loopback to %s\n", len(res.Records), p.Addrs()[0])
		start := time.Now()
		rs, err := ingest.Replay(p.Addrs(), res.Records, ingest.ReplayConfig{
			Sources:          8,
			RecordsPerSecond: 50000,
		})
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("replay: %w", err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if s := p.Stats(); s.Records == uint64(rs.Records) && p.Drained() {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err := p.Close(); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)

		stats = p.Stats()
		snap = p.Snapshot()
		sources = rs.Sources
		if stats.Records == uint64(rs.Records) && stats.DroppedRecords == 0 {
			printSummary(stats, snap)
			fmt.Printf("demo: streamed %d records in %.2fs (%.0f records/s, %d exporter sources)\n",
				stats.Processed, elapsed.Seconds(), float64(stats.Processed)/elapsed.Seconds(), sources)
			break
		}
		if attempt >= 3 {
			return nil, fmt.Errorf("demo: loopback replay stayed lossy after %d attempts (sent %d, stats %+v)",
				attempt, rs.Records, stats)
		}
		fmt.Printf("demo: attempt %d lost records (sent %d, received %d, dropped %d); retrying\n",
			attempt, rs.Records, stats.Records, stats.DroppedRecords)
	}

	// Verification against the batch pipeline.
	kept, census := core.ApplyFilter(res.Records, core.DefaultFilter())
	if !reflect.DeepEqual(snap.Census, census) {
		return nil, fmt.Errorf("demo: streaming census %+v != batch %+v", snap.Census, census)
	}
	batchFig2, err := core.Figure2(kept, res.Curve)
	if err != nil {
		return nil, err
	}
	streamFig2, err := snap.Figure2(res.Curve)
	if err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(streamFig2, batchFig2) {
		return nil, fmt.Errorf("demo: streaming figure-2 series differs from batch")
	}
	fmt.Printf("demo: OK — streaming census and figure-2 series match batch exactly (release-day ratio %.2fx)\n",
		streamFig2.ReleaseDayFlowRatio)
	return p, nil
}

// printSummary renders the drained pipeline's headline state.
func printSummary(s ingest.Stats, snap *streaming.Snapshot) {
	fmt.Printf("pipeline: %d packets, %d records (%d processed, %d dropped, %d decode errors)\n",
		s.Packets, s.Records, s.Processed, s.DroppedRecords, s.DecodeErrors)
	fmt.Printf("sources: %d (seq gaps %d, lost packets %d, reordered %d)\n",
		s.Sources, s.SeqGaps, s.SeqLost, s.SeqReordered)
	fmt.Printf("window: %d populated hours, census kept %d of %d\n",
		len(snap.Hours), snap.Census.Kept, snap.Census.Total)
	for i, sp := range snap.Spikes {
		if i >= 3 {
			fmt.Printf("spikes: ... %d more\n", len(snap.Spikes)-3)
			break
		}
		fmt.Printf("spike: %s flows=%.0f (%.1fx over trailing mean)\n",
			sp.Time.Format("Jan 02 15:04"), sp.Flows, sp.Ratio)
	}
	for i, pc := range snap.TopPrefixes {
		if i >= 5 {
			break
		}
		fmt.Printf("top prefix %d: %s (%d flows)\n", i+1, pc.Prefix, pc.Flows)
	}
	if n := len(snap.Districts); n > 0 {
		fmt.Printf("districts active: %d (located %d flows)\n", n, snap.Located)
	}
}

// fatal prints and exits non-zero.
func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "collectord: "+format+"\n", args...)
	os.Exit(1)
}
