// Command collectord is the live collector daemon of the reproduction:
// the ISP-vantage-point process that receives NFv9 export datagrams from
// border routers (or the simulator acting as load generator), pushes them
// through the bounded multi-worker ingest pipeline and keeps the paper's
// analyses — hourly Figure-2 series, spike detection, top-K prefixes,
// district rollups — continuously up to date in memory.
//
// Live state is exposed over HTTP:
//
//	GET /healthz   liveness
//	GET /metrics   pipeline counters, text format
//	GET /snapshot  merged analytics snapshot, JSON
//
// On SIGINT/SIGTERM the daemon stops the sockets, drains every queued
// batch and prints the final snapshot summary.
//
// Usage:
//
//	collectord [-listen 127.0.0.1:2055[,addr2]] [-http 127.0.0.1:8055]
//	           [-workers N] [-geodb geodb.jsonl] [-window-hours H] [-topk K]
//
//	collectord -demo [-quick]
//
// Demo mode is the self-contained loopback smoke run behind
// `make ingest-demo`: it runs the simulator, replays the trace through an
// exporter pool into its own pipeline over loopback UDP, and checks the
// streaming aggregates against the batch internal/core analysis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"reflect"
	"strings"
	"syscall"
	"time"

	"cwatrace/internal/core"
	"cwatrace/internal/entime"
	"cwatrace/internal/experiments"
	"cwatrace/internal/geo"
	"cwatrace/internal/geodb"
	"cwatrace/internal/ingest"
	"cwatrace/internal/sim"
	"cwatrace/internal/streaming"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:2055", "comma-separated UDP listen addresses")
		httpAddr    = flag.String("http", "127.0.0.1:8055", "HTTP snapshot/metrics address (empty disables)")
		workers     = flag.Int("workers", 0, "pipeline workers / analytics shards (0 = all CPUs)")
		shardBuffer = flag.Int("shard-buffer", 0, "per-shard channel capacity in batches (0 = default)")
		geoPath     = flag.String("geodb", "", "geolocation sidecar enabling per-district rollups")
		windowHours = flag.Int("window-hours", entime.StudyHours()+24, "sliding window length in hours")
		topK        = flag.Int("topk", 10, "active-prefix leaderboard size")
		demo        = flag.Bool("demo", false, "self-contained sim -> exporter -> pipeline loopback run")
		quick       = flag.Bool("quick", false, "smaller demo workload (CI smoke mode)")
	)
	flag.Parse()

	acfg := streaming.Config{WindowHours: *windowHours, TopK: *topK}
	if *geoPath != "" {
		f, err := os.Open(*geoPath)
		if err != nil {
			fatal("opening geodb sidecar: %v", err)
		}
		db, err := geodb.Read(f)
		f.Close()
		if err != nil {
			fatal("reading geodb sidecar: %v", err)
		}
		acfg.DB = db
		acfg.Model = geo.Germany()
	}

	if *demo {
		if err := runDemo(acfg, *workers, *quick); err != nil {
			fatal("%v", err)
		}
		return
	}

	p, err := ingest.New(ingest.Config{
		Listen:      strings.Split(*listen, ","),
		Workers:     *workers,
		ShardBuffer: *shardBuffer,
		Analytics:   acfg,
	})
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("collectord: ingesting NFv9 on %s\n", strings.Join(p.Addrs(), ", "))

	if *httpAddr != "" {
		go func() {
			if err := http.ListenAndServe(*httpAddr, newMux(p)); err != nil {
				fatal("http: %v", err)
			}
		}()
		fmt.Printf("collectord: live state on http://%s/snapshot\n", *httpAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("collectord: draining")
	if err := p.Close(); err != nil {
		fatal("drain: %v", err)
	}
	printSummary(p.Stats(), p.Snapshot())
}

// newMux wires the live-state endpoints.
func newMux(p *ingest.Pipeline) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		s := p.Stats()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ingest_packets %d\n", s.Packets)
		fmt.Fprintf(w, "ingest_records %d\n", s.Records)
		fmt.Fprintf(w, "ingest_records_processed %d\n", s.Processed)
		fmt.Fprintf(w, "ingest_records_dropped %d\n", s.DroppedRecords)
		fmt.Fprintf(w, "ingest_batches_dropped %d\n", s.DroppedBatches)
		fmt.Fprintf(w, "ingest_decode_errors %d\n", s.DecodeErrors)
		fmt.Fprintf(w, "ingest_socket_errors %d\n", s.SocketErrors)
		fmt.Fprintf(w, "ingest_sources %d\n", s.Sources)
		fmt.Fprintf(w, "ingest_seq_gaps %d\n", s.SeqGaps)
		fmt.Fprintf(w, "ingest_seq_lost %d\n", s.SeqLost)
		fmt.Fprintf(w, "ingest_seq_reordered %d\n", s.SeqReordered)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Stats    ingest.Stats        `json:"stats"`
			Snapshot *streaming.Snapshot `json:"snapshot"`
		}{p.Stats(), p.Snapshot()})
	})
	return mux
}

// runDemo is the loopback smoke run: simulate, export, ingest, verify.
func runDemo(acfg streaming.Config, workers int, quick bool) error {
	cfg := experiments.QuickConfig()
	if quick {
		cfg.Scale *= 3 // fewer devices, smaller trace
	}
	fmt.Printf("demo: simulating the study window (scale 1:%d)\n", cfg.Scale)
	res, err := sim.Run(cfg)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}

	acfg.DB = res.GeoDB
	acfg.Model = res.Model
	if acfg.WindowHours < entime.StudyHours()+24 {
		acfg.WindowHours = entime.StudyHours() + 24
	}

	// UDP makes no delivery promises even on loopback: retry a lossy
	// replay on a fresh pipeline rather than skipping verification — the
	// demo's whole point (and its CI role) is the exact-match check.
	var (
		stats   ingest.Stats
		snap    *streaming.Snapshot
		sources int
	)
	for attempt := 1; ; attempt++ {
		p, err := ingest.New(ingest.Config{
			Listen:      []string{"127.0.0.1:0"},
			Workers:     workers,
			ShardBuffer: 4096,
			Analytics:   acfg,
		})
		if err != nil {
			return err
		}
		fmt.Printf("demo: replaying %d records over NFv9/UDP loopback to %s\n", len(res.Records), p.Addrs()[0])
		start := time.Now()
		rs, err := ingest.Replay(p.Addrs(), res.Records, ingest.ReplayConfig{
			Sources:          8,
			RecordsPerSecond: 50000,
		})
		if err != nil {
			p.Close()
			return fmt.Errorf("replay: %w", err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if s := p.Stats(); s.Records == uint64(rs.Records) && p.Drained() {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err := p.Close(); err != nil {
			return err
		}
		elapsed := time.Since(start)

		stats = p.Stats()
		snap = p.Snapshot()
		sources = rs.Sources
		if stats.Records == uint64(rs.Records) && stats.DroppedRecords == 0 {
			printSummary(stats, snap)
			fmt.Printf("demo: streamed %d records in %.2fs (%.0f records/s, %d exporter sources)\n",
				stats.Processed, elapsed.Seconds(), float64(stats.Processed)/elapsed.Seconds(), sources)
			break
		}
		if attempt >= 3 {
			return fmt.Errorf("demo: loopback replay stayed lossy after %d attempts (sent %d, stats %+v)",
				attempt, rs.Records, stats)
		}
		fmt.Printf("demo: attempt %d lost records (sent %d, received %d, dropped %d); retrying\n",
			attempt, rs.Records, stats.Records, stats.DroppedRecords)
	}

	// Verification against the batch pipeline.
	kept, census := core.ApplyFilter(res.Records, core.DefaultFilter())
	if !reflect.DeepEqual(snap.Census, census) {
		return fmt.Errorf("demo: streaming census %+v != batch %+v", snap.Census, census)
	}
	batchFig2, err := core.Figure2(kept, res.Curve)
	if err != nil {
		return err
	}
	streamFig2, err := snap.Figure2(res.Curve)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(streamFig2, batchFig2) {
		return fmt.Errorf("demo: streaming figure-2 series differs from batch")
	}
	fmt.Printf("demo: OK — streaming census and figure-2 series match batch exactly (release-day ratio %.2fx)\n",
		streamFig2.ReleaseDayFlowRatio)
	return nil
}

// printSummary renders the drained pipeline's headline state.
func printSummary(s ingest.Stats, snap *streaming.Snapshot) {
	fmt.Printf("pipeline: %d packets, %d records (%d processed, %d dropped, %d decode errors)\n",
		s.Packets, s.Records, s.Processed, s.DroppedRecords, s.DecodeErrors)
	fmt.Printf("sources: %d (seq gaps %d, lost packets %d, reordered %d)\n",
		s.Sources, s.SeqGaps, s.SeqLost, s.SeqReordered)
	fmt.Printf("window: %d populated hours, census kept %d of %d\n",
		len(snap.Hours), snap.Census.Kept, snap.Census.Total)
	for i, sp := range snap.Spikes {
		if i >= 3 {
			fmt.Printf("spikes: ... %d more\n", len(snap.Spikes)-3)
			break
		}
		fmt.Printf("spike: %s flows=%.0f (%.1fx over trailing mean)\n",
			sp.Time.Format("Jan 02 15:04"), sp.Flows, sp.Ratio)
	}
	for i, pc := range snap.TopPrefixes {
		if i >= 5 {
			break
		}
		fmt.Printf("top prefix %d: %s (%d flows)\n", i+1, pc.Prefix, pc.Flows)
	}
	if n := len(snap.Districts); n > 0 {
		fmt.Printf("districts active: %d (located %d flows)\n", n, snap.Located)
	}
}

// fatal prints and exits non-zero.
func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "collectord: "+format+"\n", args...)
	os.Exit(1)
}
