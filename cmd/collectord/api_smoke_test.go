package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestAPISmoke is the end-to-end drill behind `make api-smoke` and the
// CI api-smoke step: start collectord in -demo -quick -serve mode (the
// loopback demo runs, verifies against the batch pipeline, then keeps
// serving its state), exercise /api/v1/snapshot with an If-None-Match
// round trip, and assert the 304 with zero body bytes.
func TestAPISmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "collectord")
	build := exec.Command("go", "build", "-o", bin, "cwatrace/cmd/collectord")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building collectord: %v", err)
	}

	proc := launchCollectord(t, bin, "-demo", "-quick", "-serve", "-http", "127.0.0.1:0")

	// The demo simulates and replays before the server comes up; wait for
	// the address announcement.
	addr := strings.TrimSuffix(proc.awaitLine("collectord: v1 API on http://", 3*time.Minute), "/api/v1/snapshot")
	if addr == "" {
		t.Fatalf("collectord never announced the v1 API; stdout so far: %q", proc.linesCopy())
	}
	base := "http://" + addr

	// Health first: the demo server must report ok.
	resp, body := smokeGet(t, base+"/api/v1/health", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("health: %d %q", resp.StatusCode, body)
	}

	// Full snapshot: 200 with a strong ETag and compact JSON.
	resp, body = smokeGet(t, base+"/api/v1/snapshot", "")
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("snapshot: %d with %dB", resp.StatusCode, len(body))
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("snapshot carries no ETag")
	}
	var snap struct {
		Hours  []json.RawMessage `json:"hours"`
		Census json.RawMessage   `json:"census"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("snapshot is not v1 JSON: %v", err)
	}
	if len(snap.Hours) == 0 || snap.Census == nil {
		t.Fatalf("demo snapshot is empty: %.200s", body)
	}

	// The conditional round trip: If-None-Match must yield 304 and zero
	// body bytes.
	resp, body = smokeGet(t, base+"/api/v1/snapshot", etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET: %d, want 304", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body))
	}
	if resp.Header.Get("ETag") != etag {
		t.Fatalf("304 ETag %q != %q", resp.Header.Get("ETag"), etag)
	}

	// Field selection keeps the series and drops the other sections.
	resp, sub := smokeGet(t, base+"/api/v1/snapshot?fields=hourly", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fields=hourly: %d", resp.StatusCode)
	}
	var subSnap struct {
		Hours  []json.RawMessage `json:"hours"`
		Census json.RawMessage   `json:"census"`
	}
	if err := json.Unmarshal(sub, &subSnap); err != nil {
		t.Fatal(err)
	}
	if len(subSnap.Hours) != len(snap.Hours) || subSnap.Census != nil {
		t.Fatalf("fields=hourly: %d hours, census present=%v", len(subSnap.Hours), subSnap.Census != nil)
	}

	// Clean shutdown on SIGTERM.
	if err := proc.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- proc.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("collectord exited uncleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("collectord did not exit after SIGTERM")
	}
}

// smokeGet runs one GET, optionally conditional.
func smokeGet(t *testing.T, url, ifNoneMatch string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}
