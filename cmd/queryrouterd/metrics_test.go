package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"cwatrace/internal/api"
	"cwatrace/internal/api/client"
	"cwatrace/internal/cluster"
	"cwatrace/internal/core"
	"cwatrace/internal/entime"
	"cwatrace/internal/ingest"
	"cwatrace/internal/netflow"
	"cwatrace/internal/obs"
	"cwatrace/internal/streaming"
)

// fixedLive is a frozen api.Live shard source for the router under
// test.
type fixedLive struct {
	snap  *streaming.Snapshot
	stats ingest.Stats
}

func (f *fixedLive) Snapshot() *streaming.Snapshot { return f.snap }
func (f *fixedLive) Stats() ingest.Stats           { return f.stats }

// shardServer serves one shard holding a single kept record, reporting
// ingest watermark wm.
func shardServer(t *testing.T, wm int64) *httptest.Server {
	t.Helper()
	acfg := streaming.Config{WindowHours: 48, TopK: 5}
	fl := core.DefaultFilter()
	an := streaming.New(acfg)
	an.Ingest([]netflow.Record{{
		Key: netflow.Key{
			Src:     fl.ServerPrefixes[0].Addr(),
			Dst:     netip.AddrFrom4([4]byte{100, 64, 0, 9}),
			SrcPort: netflow.PortHTTPS,
			DstPort: 50000,
			Proto:   netflow.ProtoTCP,
		},
		Packets: 1, Bytes: 100,
		First: entime.StudyStart, Last: entime.StudyStart,
		Exporter: "ISP/BE-000",
	}})
	srv, err := api.New(api.Config{Live: &fixedLive{
		snap:  streaming.Collect(acfg, []*streaming.Analytics{an}),
		stats: ingest.Stats{Records: 1, Processed: 1, WatermarkUnixNano: wm},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// TestRouterMetricsExposition boots the router composition main() uses
// and enforces the /metrics contract with the strict exposition linter:
// well-formed page, the cluster series (per-shard latency and errors,
// watermarks refreshed by the scrape itself), and the API layer's
// instruments on the same page.
func TestRouterMetricsExposition(t *testing.T) {
	s0 := shardServer(t, 100e9)
	s1 := shardServer(t, 50e9)

	o := newObsStack(256, 500*time.Millisecond, 64, 512)
	fleet, err := cluster.New([]string{s0.URL, s1.URL}, cluster.Options{
		Metrics:       o.reg,
		Events:        o.events,
		ClientOptions: &client.Options{Retries: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(newRouterServer(fleet, o, false, 0, false))
	t.Cleanup(router.Close)

	// One data fan-out so the request histograms have observations.
	if resp, err := http.Get(router.URL + "/api/v1/snapshot"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("snapshot fan-out = %d", resp.StatusCode)
		}
		if st := resp.Header.Get("Server-Timing"); !strings.Contains(st, "shard0;dur=") || !strings.Contains(st, "shard1;dur=") {
			t.Fatalf("Server-Timing = %q, want per-shard durations", st)
		}
	}

	resp, err := http.Get(router.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exp, errs := obs.Lint(string(body))
	for _, e := range errs {
		t.Errorf("exposition lint: %v", e)
	}

	// The scrape itself ran a stats gather, so the watermarks are fresh
	// without any prior /api/v1/stats request. Fleet = min, not sum.
	if v, ok := exp.Value("cluster_fleet_watermark_timestamp_seconds", ""); !ok || v != 50 {
		t.Fatalf("cluster_fleet_watermark_timestamp_seconds = %v (found=%t), want the min 50", v, ok)
	}
	if v, ok := exp.Value("cluster_shard_watermark_timestamp_seconds", `{shard="0"}`); !ok || v != 100 {
		t.Fatalf("shard 0 watermark = %v (found=%t), want 100", v, ok)
	}
	for _, shard := range []string{"0", "1"} {
		labels := `{shard="` + shard + `"}`
		if v, ok := exp.Value("cluster_shard_request_seconds_count", labels); !ok || v < 2 {
			t.Fatalf("cluster_shard_request_seconds_count%s = %v (found=%t), want >= 2", labels, v, ok)
		}
		if v, ok := exp.Value("cluster_shard_errors_total", labels); !ok || v != 0 {
			t.Fatalf("cluster_shard_errors_total%s = %v (found=%t), want 0", labels, v, ok)
		}
	}
	if typ := exp.Types["cluster_fanouts_total"]; typ != "counter" {
		t.Fatalf("cluster_fanouts_total type = %q, want counter", typ)
	}
	if v, ok := exp.Value("api_requests_total", `{endpoint="v1_snapshot"}`); !ok || v != 1 {
		t.Fatalf(`api_requests_total{endpoint="v1_snapshot"} = %v (found=%t), want 1`, v, ok)
	}
}
