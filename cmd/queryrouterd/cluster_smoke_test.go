package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	v1 "cwatrace/internal/api/v1"
	"cwatrace/internal/experiments"
	"cwatrace/internal/ingest"
	"cwatrace/internal/sim"
)

// proc is one running child daemon with line-captured stdout and
// stderr (the access log, under -http-log, goes to stderr).
type proc struct {
	cmd *exec.Cmd

	mu       sync.Mutex
	lines    []string
	errLines []string
}

func (p *proc) capture(r io.Reader, into *[]string) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		p.mu.Lock()
		*into = append(*into, sc.Text())
		p.mu.Unlock()
	}
	_, _ = io.Copy(io.Discard, r)
}

func launch(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd}
	go p.capture(stdout, &p.lines)
	go p.capture(stderr, &p.errLines)
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	return p
}

// awaitErrContaining polls the captured stderr for a line containing
// substr, returning it ("" on timeout).
func (p *proc) awaitErrContaining(substr string, timeout time.Duration) string {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		p.mu.Lock()
		for _, line := range p.errLines {
			if strings.Contains(line, substr) {
				p.mu.Unlock()
				return line
			}
		}
		p.mu.Unlock()
		time.Sleep(20 * time.Millisecond)
	}
	return ""
}

func (p *proc) errLinesCopy() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.errLines...)
}

// awaitLine polls the captured stdout for a line with the prefix,
// returning the trimmed remainder ("" on timeout).
func (p *proc) awaitLine(prefix string, timeout time.Duration) string {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		p.mu.Lock()
		for _, line := range p.lines {
			if rest, ok := strings.CutPrefix(line, prefix); ok {
				p.mu.Unlock()
				return strings.TrimSpace(rest)
			}
		}
		p.mu.Unlock()
		time.Sleep(20 * time.Millisecond)
	}
	return ""
}

func (p *proc) linesCopy() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.lines...)
}

func buildBinary(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	build := exec.Command("go", "build", "-o", bin, pkg)
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building %s: %v", pkg, err)
	}
	return bin
}

// startShard launches one collectord shard node and returns its bound
// UDP and HTTP addresses.
func startShard(t *testing.T, bin string, args ...string) (*proc, string, string) {
	t.Helper()
	p := launch(t, bin, args...)
	udp := p.awaitLine("collectord: ingesting NFv9 on ", 20*time.Second)
	httpAddr := strings.TrimSuffix(p.awaitLine("collectord: live state on http://", 20*time.Second), "/snapshot")
	if udp == "" || httpAddr == "" {
		t.Fatalf("collectord never announced its addresses; stdout so far: %q", p.linesCopy())
	}
	if shard := p.awaitLine("collectord: cluster shard ", 5*time.Second); shard == "" {
		t.Fatalf("collectord never announced its shard assignment; stdout: %q", p.linesCopy())
	}
	return p, udp, httpAddr
}

// smokeTrace is the slice of the /debug/traces?id= JSON the drill
// asserts on.
type smokeTrace struct {
	ID       string   `json:"id"`
	Name     string   `json:"name"`
	Degraded bool     `json:"degraded"`
	Keep     []string `json:"keep"`
	Spans    []struct {
		ID     string `json:"id"`
		Parent string `json:"parent"`
		Name   string `json:"name"`
		Node   string `json:"node"`
	} `json:"spans"`
}

func fetchSmokeTrace(t *testing.T, url string) (smokeTrace, error) {
	t.Helper()
	var tr smokeTrace
	status, _, body, err := routerGet(t, url, nil)
	if err != nil {
		return tr, err
	}
	if status != http.StatusOK {
		return tr, fmt.Errorf("status %d: %.200s", status, body)
	}
	return tr, json.Unmarshal(body, &tr)
}

// smokeTreeComplete reports whether a merged trace holds the full
// cross-process shape: one root, n fanout children, n node-tagged
// shard spans.
func smokeTreeComplete(tr smokeTrace, n int) bool {
	roots, fanouts, shardSpans := 0, 0, 0
	for _, sp := range tr.Spans {
		switch {
		case sp.Parent == "":
			roots++
		case sp.Name == "fanout.shard":
			fanouts++
		}
		if sp.Node != "" && sp.Name == "v1_snapshot" {
			shardSpans++
		}
	}
	return roots == 1 && fanouts == n && shardSpans == n
}

// routerGet fetches one router URL, tolerating transient connection
// errors (the router may still be binding).
func routerGet(t *testing.T, url string, hdr map[string]string) (int, http.Header, []byte, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, body, nil
}

// TestClusterSmoke is the end-to-end process-level drill behind `make
// cluster-smoke` and the CI cluster step: three real collectord shard
// processes (each -shard i/3 over a shared geodb sidecar, write-through
// WAL), one real queryrouterd over their HTTP addresses, real NFv9/UDP
// traffic into every node. It then SIGKILLs one shard and requires the
// documented partial envelope (206, missing_shards, no-store, no ETag),
// and restarts the shard on the same data dir and ports to require full
// recovery: 200 with a fresh validator and a body byte-identical to the
// pre-kill cluster response.
func TestClusterSmoke(t *testing.T) {
	collectord := buildBinary(t, "cwatrace/cmd/collectord")
	queryrouterd := buildBinary(t, "cwatrace/cmd/queryrouterd")

	// A quick-sim trace brings its own geo database; the shards split on
	// its district mapping.
	cfg := experiments.QuickConfig()
	cfg.Scale *= 3
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	records := res.Records[:len(res.Records)/3]
	geoPath := filepath.Join(t.TempDir(), "geodb.jsonl")
	gf, err := os.Create(geoPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.GeoDB.Write(gf); err != nil {
		t.Fatal(err)
	}
	if err := gf.Close(); err != nil {
		t.Fatal(err)
	}

	const n = 3
	shards := make([]*proc, n)
	udps := make([]string, n)
	https := make([]string, n)
	dataDirs := make([]string, n)
	shardArgs := func(i int, listen, httpAddr string) []string {
		return []string{
			"-listen", listen,
			"-http", httpAddr,
			"-shard", fmt.Sprintf("%d/%d", i, n),
			"-geodb", geoPath,
			"-data-dir", dataDirs[i],
			"-fsync", "always",
			"-checkpoint-interval", "0",
			"-workers", "2",
			"-http-log",
			// keep every trace: the drill asserts on /debug/traces
			"-trace-slow", "1ns",
		}
	}
	for i := 0; i < n; i++ {
		dataDirs[i] = t.TempDir()
		shards[i], udps[i], https[i] = startShard(t, collectord, shardArgs(i, "127.0.0.1:0", "127.0.0.1:0")...)
	}

	// Every node receives the SAME stream; the -shard filter keeps each
	// node's own share.
	for i := 0; i < n; i++ {
		if _, err := ingest.Replay([]string{udps[i]}, records, ingest.ReplayConfig{
			Sources:          4,
			RecordsPerSecond: 60000,
		}); err != nil {
			t.Fatalf("replay to shard %d: %v", i, err)
		}
	}

	router := launch(t, queryrouterd,
		"-nodes", strings.Join(https, ","),
		"-http", "127.0.0.1:0",
		"-timeout", "5s",
		"-retries=-1",
		"-http-log",
		"-trace-slow", "1ns",
	)
	routerURL := strings.TrimSuffix(router.awaitLine("queryrouterd: v1 API on http://", 20*time.Second), "/api/v1/snapshot")
	if routerURL == "" {
		t.Fatalf("queryrouterd never announced; stdout: %q", router.linesCopy())
	}
	snapURL := "http://" + routerURL + "/api/v1/snapshot"

	// Wait for the merged view to stabilize (drained shards), then pin
	// the healthy contract: 200, a validator, a bodyless 304.
	var healthyBody []byte
	var healthyTag string
	stable := 0
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && stable < 3 {
		status, hdr, body, err := routerGet(t, snapURL, nil)
		if err != nil || status != http.StatusOK {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if bytes.Equal(body, healthyBody) {
			stable++
		} else {
			stable = 0
		}
		healthyBody, healthyTag = body, hdr.Get("ETag")
		time.Sleep(150 * time.Millisecond)
	}
	if stable < 3 {
		t.Fatal("cluster snapshot never stabilized after the replay")
	}
	if healthyTag == "" {
		t.Fatal("healthy cluster response carries no ETag")
	}
	if st, _, body, err := routerGet(t, snapURL, map[string]string{"If-None-Match": healthyTag}); err != nil || st != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("revalidation: %d (err %v, %d body bytes), want bodyless 304", st, err, len(body))
	}
	var healthySnap v1.Snapshot
	if err := json.Unmarshal(healthyBody, &healthySnap); err != nil {
		t.Fatal(err)
	}
	if healthySnap.Census == nil || healthySnap.Census.Kept == 0 {
		t.Fatal("cluster saw no kept traffic; the drill would be vacuous")
	}

	// Cross-shard tracing: one traced request at the router edge must
	// surface its X-Request-Id in the router's access log AND every
	// shard's (the fan-out client forwards it), echo the id on the
	// response, and report per-shard gather durations in Server-Timing.
	const traceID = "smoke-trace-0001"
	status, hdr, _, err := routerGet(t, snapURL, map[string]string{"X-Request-Id": traceID})
	if err != nil || status != http.StatusOK {
		t.Fatalf("traced request: %d (err %v)", status, err)
	}
	if got := hdr.Get("X-Request-Id"); got != traceID {
		t.Fatalf("router echoed X-Request-Id %q, want %q", got, traceID)
	}
	st := hdr.Get("Server-Timing")
	for i := 0; i < n; i++ {
		if want := fmt.Sprintf("shard%d;dur=", i); !strings.Contains(st, want) {
			t.Fatalf("Server-Timing %q misses %q", st, want)
		}
	}
	if line := router.awaitErrContaining("id="+traceID, 10*time.Second); line == "" {
		t.Fatalf("router access log never showed id=%s; stderr: %q", traceID, router.errLinesCopy())
	}
	for i := 0; i < n; i++ {
		if line := shards[i].awaitErrContaining("id="+traceID, 10*time.Second); line == "" {
			t.Fatalf("shard %d access log never showed id=%s; stderr: %q", i, traceID, shards[i].errLinesCopy())
		}
	}

	// Flight recorder, healthy half: the router's /debug/traces?id= must
	// return the MERGED cross-process tree for the traced request — the
	// router's root span, one fanout child per shard, and each shard's
	// own spans grafted in (node-tagged) because the fan-out client
	// forwarded X-Trace-Parent next to X-Request-Id. Poll: the root span
	// ends after the response bytes are already on the wire.
	tracesURL := "http://" + routerURL + "/debug/traces?id="
	var tree smokeTrace
	deadline = time.Now().Add(10 * time.Second)
	treeOK := false
	for time.Now().Before(deadline) && !treeOK {
		if tr, err := fetchSmokeTrace(t, tracesURL+traceID); err == nil {
			tree = tr
			treeOK = smokeTreeComplete(tr, n)
		}
		if !treeOK {
			time.Sleep(100 * time.Millisecond)
		}
	}
	if !treeOK {
		t.Fatalf("router never served the full cross-process tree for %s; last: %+v", traceID, tree)
	}
	rootID := ""
	fanouts := map[string]bool{}
	for _, sp := range tree.Spans {
		if sp.Parent == "" {
			rootID = sp.ID
		}
		if sp.Name == "fanout.shard" {
			fanouts[sp.ID] = true
		}
	}
	shardRoots := 0
	for _, sp := range tree.Spans {
		switch {
		case sp.Name == "fanout.shard":
			if sp.Parent != rootID {
				t.Fatalf("fanout span %s parented under %q, want router root %q", sp.ID, sp.Parent, rootID)
			}
		case sp.Node != "" && sp.Name == "v1_snapshot":
			if !fanouts[sp.Parent] {
				t.Fatalf("shard root span on %s parented under %q, not a fanout span", sp.Node, sp.Parent)
			}
			shardRoots++
		}
	}
	if shardRoots != n {
		t.Fatalf("merged tree has %d shard root spans, want %d; spans: %+v", shardRoots, n, tree.Spans)
	}
	// And the shard's own half, queried directly, shows the propagated
	// parent: its root span is NOT an orphan.
	shardTr, err := fetchSmokeTrace(t, "http://"+https[0]+"/debug/traces?id="+traceID)
	if err != nil {
		t.Fatalf("shard 0 /debug/traces: %v", err)
	}
	if len(shardTr.Spans) == 0 || shardTr.Spans[0].Parent == "" {
		t.Fatalf("shard 0 trace root has no cross-process parent: %+v", shardTr.Spans)
	}

	// SIGKILL shard 1: no drain, no checkpoint.
	if err := shards[1].cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = shards[1].cmd.Process.Wait()

	const degradedTraceID = "smoke-trace-degraded"
	var degraded v1.Snapshot
	deadline = time.Now().Add(20 * time.Second)
	sawDegraded := false
	for time.Now().Before(deadline) {
		status, hdr, body, err := routerGet(t, snapURL, map[string]string{"X-Request-Id": degradedTraceID})
		if err != nil {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if status != http.StatusPartialContent {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if cc := hdr.Get("Cache-Control"); cc != "no-store" {
			t.Fatalf("degraded Cache-Control = %q, want no-store", cc)
		}
		if etag := hdr.Get("ETag"); etag != "" {
			t.Fatalf("degraded response carries ETag %q", etag)
		}
		if err := json.Unmarshal(body, &degraded); err != nil {
			t.Fatal(err)
		}
		sawDegraded = true
		break
	}
	if !sawDegraded {
		t.Fatal("router never served the degraded envelope after the kill")
	}
	if degraded.Degraded == nil || len(degraded.Degraded.MissingShards) != 1 || degraded.Degraded.MissingShards[0] != 1 {
		t.Fatalf("degraded marker = %+v, want missing_shards [1]", degraded.Degraded)
	}
	// The partial envelope names the request it failed, so the body an
	// operator is holding links straight to the access-log trail.
	if degraded.Degraded.RequestID != degradedTraceID {
		t.Fatalf("degraded request_id = %q, want %q", degraded.Degraded.RequestID, degradedTraceID)
	}
	if degraded.Census == nil || degraded.Census.Kept >= healthySnap.Census.Kept {
		t.Fatalf("degraded kept %v not below healthy %d: the partial total silently includes the dead shard",
			degraded.Census, healthySnap.Census.Kept)
	}

	// Flight recorder, degraded half: tail sampling must have retained
	// the 206 trace (reason "degraded") even with a shard SIGKILLed, and
	// the router's event ring must carry the shard_dead transition.
	deadline = time.Now().Add(10 * time.Second)
	keptDegraded := false
	for time.Now().Before(deadline) && !keptDegraded {
		if tr, err := fetchSmokeTrace(t, tracesURL+degradedTraceID); err == nil && tr.Degraded {
			for _, k := range tr.Keep {
				if k == "degraded" {
					keptDegraded = true
				}
			}
		}
		if !keptDegraded {
			time.Sleep(100 * time.Millisecond)
		}
	}
	if !keptDegraded {
		t.Fatalf("degraded trace %s not retained with keep reason \"degraded\"", degradedTraceID)
	}
	_, _, evBody, err := routerGet(t, "http://"+routerURL+"/debug/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	var evs struct {
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(evBody, &evs); err != nil {
		t.Fatal(err)
	}
	sawDead := false
	for _, ev := range evs.Events {
		if ev.Kind == "shard_dead" {
			sawDead = true
		}
	}
	if !sawDead {
		t.Fatalf("router /debug/events has no shard_dead after the kill: %s", evBody)
	}

	// Restart shard 1 on its old data dir AND its old ports (the
	// router's node list is fixed). Write-through WAL + replay-on-open
	// restore its exact pre-kill state, so the cluster response returns
	// to the pre-kill bytes — under a fresh validator (new node boot),
	// which must still revalidate.
	shards[1], _, _ = startShard(t, collectord, shardArgs(1, udps[1], https[1])...)

	deadline = time.Now().Add(30 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		status, hdr, body, err := routerGet(t, snapURL, nil)
		if err != nil || status != http.StatusOK {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if !bytes.Equal(body, healthyBody) {
			t.Fatalf("recovered cluster body differs from pre-kill body\n pre: %.300s\npost: %.300s", healthyBody, body)
		}
		newTag := hdr.Get("ETag")
		if newTag == "" {
			t.Fatal("recovered response carries no ETag")
		}
		if st, _, b304, err := routerGet(t, snapURL, map[string]string{"If-None-Match": newTag}); err != nil || st != http.StatusNotModified || len(b304) != 0 {
			t.Fatalf("recovered revalidation: %d (err %v)", st, err)
		}
		recovered = true
		break
	}
	if !recovered {
		t.Fatal("router never returned to complete responses after the shard restart")
	}
	t.Log("cluster smoke: degraded envelope honest, recovery byte-identical")
}
