// Command queryrouterd is the stateless scatter-gather front of a
// collectord cluster. Each collectord node runs with -shard i/N and owns
// one slice of the 401-district partition; the router fans every
// /api/v1 read out over the fleet with the typed client, merges the
// shards' aggregates with the commutative streaming merge, and serves
// the same versioned API a single collector would — byte-identical
// bodies (the cluster conformance suite in internal/cluster pins this),
// strong conditional GETs backed by a composite validator over the
// per-shard ETags, and an explicit partial-failure envelope when a
// shard is down: HTTP 206 + a degraded marker naming the missing
// shards, Cache-Control: no-store, no ETag — never a silently wrong
// total.
//
//	GET /api/v1/health           200 ok / 200 degraded (some shards down)
//	                             503 degraded (all down) / 503 draining
//	GET /api/v1/stats            field-wise sum over reachable shards
//	GET /api/v1/snapshot         merged cluster snapshot (fields/top/pretty)
//	GET /api/v1/query?from=&to=  merged historical range (durable shards)
//	GET /metrics                 Prometheus text format (fan-out latency
//	                             per shard, error counters, freshness
//	                             watermarks — fleet min, never a sum)
//	GET /debug/traces[?id=ID]    flight recorder: tail-sampled span traces;
//	                             with ?id= the router also gathers the
//	                             shards' spans for that request id and
//	                             serves the merged cross-process tree
//	GET /debug/events            flight recorder: one-shot event ring
//	                             (shard_dead / shard_recovered edges)
//
// The /debug endpoints (pprof included) share the -http listener with
// /metrics; bind it to loopback or an internal interface, never
// publicly.
//
// Usage:
//
//	queryrouterd -nodes host1:8055,host2:8055,host3:8055
//	             [-http 127.0.0.1:8056] [-topk K] [-timeout D]
//	             [-retries N] [-http-log] [-pprof] [-slow-query D]
//	             [-trace-ring N] [-trace-slow D] [-trace-sample N]
//	             [-event-ring N]
//
// -nodes lists the shard nodes in shard order: the i-th address must be
// the node running -shard i/N. -topk must match the nodes' -topk for
// the merged leaderboard to be exact (both default to 10).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"cwatrace/internal/api"
	"cwatrace/internal/api/client"
	"cwatrace/internal/cluster"
	"cwatrace/internal/obs"
)

func main() {
	var (
		nodes     = flag.String("nodes", "", "comma-separated shard node addresses, in shard order (required)")
		httpAddr  = flag.String("http", "127.0.0.1:8056", "HTTP listen address")
		topK      = flag.Int("topk", 10, "merged leaderboard size (must match the nodes' -topk)")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-shard request timeout")
		retries   = flag.Int("retries", 0, "per-shard retries on transient failures (0 = client default, negative = none)")
		httpLog   = flag.Bool("http-log", false, "log one access line per HTTP request")
		pprofOn   = flag.Bool("pprof", false, "mount /debug/pprof on the HTTP server")
		slowQuery = flag.Duration("slow-query", 0, "log any request at least this slow (0 disables)")

		traceRing   = flag.Int("trace-ring", 256, "flight-recorder trace ring capacity (0 disables span tracing)")
		traceSlow   = flag.Duration("trace-slow", 500*time.Millisecond, "tail-sampling slow threshold: keep any trace at least this slow (negative disables the slow rule)")
		traceSample = flag.Int("trace-sample", 64, "keep 1-in-N healthy traces as baseline (0 disables)")
		eventRing   = flag.Int("event-ring", 512, "flight-recorder event ring capacity (0 disables events)")
	)
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*nodes, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fatal("no -nodes given (want a comma-separated shard list, e.g. -nodes host1:8055,host2:8055)")
	}

	o := newObsStack(*traceRing, *traceSlow, *traceSample, *eventRing)
	obs.InstallCrashDump(o.events, os.Stderr)
	defer obs.DumpOnPanic(o.events, os.Stderr)

	fleet, err := cluster.New(addrs, cluster.Options{
		TopK:          *topK,
		Timeout:       *timeout,
		ClientOptions: &client.Options{Retries: *retries},
		Metrics:       o.reg,
		Events:        o.events,
	})
	if err != nil {
		fatal("%v", err)
	}

	srv := newRouterServer(fleet, o, *httpLog, *slowQuery, *pprofOn)

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fatal("http: %v", err)
	}
	hs := &http.Server{Handler: srv}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			fatal("http: %v", err)
		}
	}()
	fmt.Printf("queryrouterd: fronting %d shards: %s\n", fleet.NumShards(), strings.Join(fleet.Nodes(), ", "))
	fmt.Printf("queryrouterd: v1 API on http://%s/api/v1/snapshot\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("queryrouterd: draining")
	srv.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "queryrouterd: http shutdown: %v\n", err)
	}
}

// obsStack bundles the router's observability plumbing: the metrics
// registry plus the flight recorder's trace and event rings (nil when
// disabled by their ring-size flags; every consumer is nil-safe).
type obsStack struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	events *obs.EventRing
}

// newObsStack builds the registry, the tracer and the event ring from
// the flight-recorder flags, and registers the runtime-health gauges
// and the recorder's own accounting on the registry.
func newObsStack(traceRing int, traceSlow time.Duration, traceSample, eventRing int) obsStack {
	o := obsStack{reg: obs.NewRegistry()}
	obs.RegisterRuntimeMetrics(o.reg)
	if traceRing > 0 {
		o.tracer = obs.NewTracer(obs.TracerConfig{
			RingSize: traceRing,
			Policy:   obs.Policy{Slow: traceSlow, KeepOneIn: traceSample},
		})
		o.tracer.RegisterMetrics(o.reg)
	}
	if eventRing > 0 {
		o.events = obs.NewEventRing(eventRing)
		o.events.RegisterMetrics(o.reg)
	}
	return o
}

// newRouterServer builds the router's API server: the fan-out surface,
// the registry-backed /metrics endpoint, the flight-recorder debug
// endpoints, and (opted in) /debug/pprof, all behind the shared
// middleware.
func newRouterServer(fleet *cluster.Fleet, o obsStack, accessLog bool, slowQuery time.Duration, pprofOn bool) *api.Server {
	cfg := api.Config{Fanout: fleet, Metrics: o.reg, SlowQuery: slowQuery, Tracer: o.tracer}
	if accessLog {
		cfg.Log = log.New(os.Stderr, "queryrouterd: http: ", log.LstdFlags)
	}
	srv, err := api.New(cfg)
	if err != nil {
		fatal("%v", err)
	}
	// The watermark gauges only move on a stats gather; refresh them on
	// every scrape (bounded by the per-shard timeout) so Prometheus sees
	// current freshness even on an otherwise idle router.
	srv.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := fleet.Stats(r.Context()); err != nil {
			fmt.Fprintf(os.Stderr, "queryrouterd: stats gather for /metrics: %v\n", err)
		}
		o.reg.Handler().ServeHTTP(w, r)
	}))
	srv.Handle("/debug/traces", traceHandler(o.tracer, fleet.Nodes()))
	srv.Handle("/debug/events", o.events.Handler())
	if pprofOn {
		srv.Handle("/debug/pprof/", http.HandlerFunc(pprof.Index))
		srv.Handle("/debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline))
		srv.Handle("/debug/pprof/profile", http.HandlerFunc(pprof.Profile))
		srv.Handle("/debug/pprof/symbol", http.HandlerFunc(pprof.Symbol))
		srv.Handle("/debug/pprof/trace", http.HandlerFunc(pprof.Trace))
	}
	return srv
}

// traceHandler serves the router's /debug/traces. Without ?id= it
// lists the locally retained traces; with ?id= it also asks every
// shard's debug endpoint for the same request id and grafts the shard
// spans (labelled with their node address) into the router's trace, so
// one id yields the full cross-process tree — router root, fan-out
// children, and each shard's own spans nested under them via the
// X-Trace-Parent linkage.
func traceHandler(tracer *obs.Tracer, nodes []string) http.Handler {
	local := tracer.Handler()
	hc := &http.Client{Timeout: 2 * time.Second}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" || tracer == nil {
			local.ServeHTTP(w, r)
			return
		}
		var merged *obs.Trace
		if tr := tracer.Lookup(id); tr != nil {
			cp := *tr
			cp.Spans = append([]obs.SpanData(nil), tr.Spans...)
			merged = &cp
		}
		for _, node := range nodes {
			tr, err := fetchShardTrace(hc, node, id)
			if err != nil || tr == nil {
				continue // a dead shard has no spans to contribute
			}
			if merged == nil {
				// The router's own ring evicted (or never kept) the trace;
				// the shard halves are still worth serving.
				cp := *tr
				cp.Spans = nil
				merged = &cp
			}
			for _, sp := range tr.Spans {
				if sp.Node == "" {
					sp.Node = node
				}
				merged.Spans = append(merged.Spans, sp)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		if merged == nil {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "trace not retained", "id": id})
			return
		}
		sort.Slice(merged.Spans, func(i, j int) bool {
			return merged.Spans[i].Start.Before(merged.Spans[j].Start)
		})
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(merged)
	})
}

// fetchShardTrace asks one shard for its half of a trace. Any failure
// (shard down, trace not retained there) yields (nil, err-or-nil): the
// merge simply proceeds without that shard's spans.
func fetchShardTrace(hc *http.Client, node, id string) (*obs.Trace, error) {
	base := node
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	resp, err := hc.Get(base + "/debug/traces?id=" + url.QueryEscape(id))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil
	}
	var tr obs.Trace
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// fatal prints and exits non-zero.
func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "queryrouterd: "+format+"\n", args...)
	os.Exit(1)
}
