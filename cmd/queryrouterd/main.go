// Command queryrouterd is the stateless scatter-gather front of a
// collectord cluster. Each collectord node runs with -shard i/N and owns
// one slice of the 401-district partition; the router fans every
// /api/v1 read out over the fleet with the typed client, merges the
// shards' aggregates with the commutative streaming merge, and serves
// the same versioned API a single collector would — byte-identical
// bodies (the cluster conformance suite in internal/cluster pins this),
// strong conditional GETs backed by a composite validator over the
// per-shard ETags, and an explicit partial-failure envelope when a
// shard is down: HTTP 206 + a degraded marker naming the missing
// shards, Cache-Control: no-store, no ETag — never a silently wrong
// total.
//
//	GET /api/v1/health           200 ok / 200 degraded (some shards down)
//	                             503 degraded (all down) / 503 draining
//	GET /api/v1/stats            field-wise sum over reachable shards
//	GET /api/v1/snapshot         merged cluster snapshot (fields/top/pretty)
//	GET /api/v1/query?from=&to=  merged historical range (durable shards)
//	GET /metrics                 Prometheus text format (fan-out latency
//	                             per shard, error counters, freshness
//	                             watermarks — fleet min, never a sum)
//
// Usage:
//
//	queryrouterd -nodes host1:8055,host2:8055,host3:8055
//	             [-http 127.0.0.1:8056] [-topk K] [-timeout D]
//	             [-retries N] [-http-log] [-pprof] [-slow-query D]
//
// -nodes lists the shard nodes in shard order: the i-th address must be
// the node running -shard i/N. -topk must match the nodes' -topk for
// the merged leaderboard to be exact (both default to 10).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cwatrace/internal/api"
	"cwatrace/internal/api/client"
	"cwatrace/internal/cluster"
	"cwatrace/internal/obs"
)

func main() {
	var (
		nodes     = flag.String("nodes", "", "comma-separated shard node addresses, in shard order (required)")
		httpAddr  = flag.String("http", "127.0.0.1:8056", "HTTP listen address")
		topK      = flag.Int("topk", 10, "merged leaderboard size (must match the nodes' -topk)")
		timeout   = flag.Duration("timeout", 10*time.Second, "per-shard request timeout")
		retries   = flag.Int("retries", 0, "per-shard retries on transient failures (0 = client default, negative = none)")
		httpLog   = flag.Bool("http-log", false, "log one access line per HTTP request")
		pprofOn   = flag.Bool("pprof", false, "mount /debug/pprof on the HTTP server")
		slowQuery = flag.Duration("slow-query", 0, "log any request at least this slow (0 disables)")
	)
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*nodes, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fatal("no -nodes given (want a comma-separated shard list, e.g. -nodes host1:8055,host2:8055)")
	}

	reg := obs.NewRegistry()
	fleet, err := cluster.New(addrs, cluster.Options{
		TopK:          *topK,
		Timeout:       *timeout,
		ClientOptions: &client.Options{Retries: *retries},
		Metrics:       reg,
	})
	if err != nil {
		fatal("%v", err)
	}

	srv := newRouterServer(fleet, reg, *httpLog, *slowQuery, *pprofOn)

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fatal("http: %v", err)
	}
	hs := &http.Server{Handler: srv}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			fatal("http: %v", err)
		}
	}()
	fmt.Printf("queryrouterd: fronting %d shards: %s\n", fleet.NumShards(), strings.Join(fleet.Nodes(), ", "))
	fmt.Printf("queryrouterd: v1 API on http://%s/api/v1/snapshot\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("queryrouterd: draining")
	srv.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "queryrouterd: http shutdown: %v\n", err)
	}
}

// newRouterServer builds the router's API server: the fan-out surface,
// the registry-backed /metrics endpoint, and (opted in) /debug/pprof,
// all behind the shared middleware.
func newRouterServer(fleet *cluster.Fleet, reg *obs.Registry, accessLog bool, slowQuery time.Duration, pprofOn bool) *api.Server {
	cfg := api.Config{Fanout: fleet, Metrics: reg, SlowQuery: slowQuery}
	if accessLog {
		cfg.Log = log.New(os.Stderr, "queryrouterd: http: ", log.LstdFlags)
	}
	srv, err := api.New(cfg)
	if err != nil {
		fatal("%v", err)
	}
	// The watermark gauges only move on a stats gather; refresh them on
	// every scrape (bounded by the per-shard timeout) so Prometheus sees
	// current freshness even on an otherwise idle router.
	srv.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := fleet.Stats(r.Context()); err != nil {
			fmt.Fprintf(os.Stderr, "queryrouterd: stats gather for /metrics: %v\n", err)
		}
		reg.Handler().ServeHTTP(w, r)
	}))
	if pprofOn {
		srv.Handle("/debug/pprof/", http.HandlerFunc(pprof.Index))
		srv.Handle("/debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline))
		srv.Handle("/debug/pprof/profile", http.HandlerFunc(pprof.Profile))
		srv.Handle("/debug/pprof/symbol", http.HandlerFunc(pprof.Symbol))
		srv.Handle("/debug/pprof/trace", http.HandlerFunc(pprof.Trace))
	}
	return srv
}

// fatal prints and exits non-zero.
func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "queryrouterd: "+format+"\n", args...)
	os.Exit(1)
}
