// Command apiload is the concurrent load generator for the collectord
// analytics API: it hammers one endpoint with N workers for a fixed
// duration and reports request throughput, status breakdown and bytes
// transferred. With -conditional each worker revalidates with
// If-None-Match after its first response, measuring the conditional-GET
// fast path (304 Not Modified, zero body bytes) against full reads.
//
// Usage:
//
//	apiload -addr HOST:PORT [-endpoint snapshot|query] [-from T] [-to T]
//	        [-resolution hour|day|week|auto] [-fields hourly,prefixes,...]
//	        [-top N] [-c workers] [-duration D] [-conditional]
//
//	apiload -self [-quick] [-c workers] [-duration D]
//
// -from/-to take RFC 3339 timestamps (2020-06-16T00:00:00Z) or unix
// seconds (1592265600), like every other store consumer.
//
// -self is the self-contained benchmark behind `make bench-api`: it
// simulates a trace, opens a durable store, checkpoints the first half,
// keeps appending the rest as live ingest, serves the API over
// loopback, and measures three configurations — uncached full-snapshot
// reads, uncached historical queries, and conditional (ETag) historical
// queries — so the cached-vs-uncached ratio lands in one table.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cwatrace/internal/api"
	v1 "cwatrace/internal/api/v1"
	"cwatrace/internal/entime"
	"cwatrace/internal/experiments"
	"cwatrace/internal/netflow"
	"cwatrace/internal/sim"
	"cwatrace/internal/store"
	"cwatrace/internal/streaming"
	"cwatrace/internal/tier"
)

func main() {
	var (
		addr        = flag.String("addr", "", "collectord API address, e.g. 127.0.0.1:8055")
		endpoint    = flag.String("endpoint", "snapshot", "endpoint to load: snapshot or query")
		fromArg     = flag.String("from", "", "query range start (RFC 3339 or unix seconds; empty = store origin)")
		toArg       = flag.String("to", "", "query range end, exclusive (RFC 3339 or unix seconds; empty = end of history)")
		resolution  = flag.String("resolution", "", "query answer resolution: hour (exact, default), day, week or auto")
		fields      = flag.String("fields", "", "comma-separated field selection ("+v1.FieldList()+"; empty = all)")
		top         = flag.Int("top", 0, "top-K truncation of ranked lists (0 = all)")
		workers     = flag.Int("c", 8, "concurrent workers")
		duration    = flag.Duration("duration", 5*time.Second, "measurement duration per configuration")
		conditional = flag.Bool("conditional", false, "revalidate with If-None-Match after the first response")
		self        = flag.Bool("self", false, "self-contained benchmark: spin up a store-backed server with live ingest")
		quick       = flag.Bool("quick", false, "smaller -self workload (CI smoke mode)")
	)
	flag.Parse()

	if *self {
		if err := runSelf(*workers, *duration, *quick); err != nil {
			fatal("%v", err)
		}
		return
	}
	if *addr == "" {
		fatal("need -addr (or -self); see -h")
	}

	path, err := buildPath(*endpoint, *fromArg, *toArg, *resolution, *fields, *top)
	if err != nil {
		fatal("%v", err)
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	res := run(base+path, *workers, *duration, *conditional, false)
	fmt.Print(res.render(fmt.Sprintf("%s c=%d conditional=%v", path, *workers, *conditional)))
}

// buildPath assembles the request path, validating the parameters the
// way the server would.
func buildPath(endpoint, from, to, resolution, fields string, top int) (string, error) {
	if _, err := v1.ParseFields(fields); err != nil {
		return "", err
	}
	if _, err := store.ParseTime(from); err != nil {
		return "", fmt.Errorf("-from: %w", err)
	}
	if _, err := store.ParseTime(to); err != nil {
		return "", fmt.Errorf("-to: %w", err)
	}
	if _, err := tier.ParseResolution(resolution); err != nil {
		return "", fmt.Errorf("-resolution: %w", err)
	}
	var params []string
	add := func(k, v string) {
		if v != "" {
			params = append(params, k+"="+v)
		}
	}
	switch endpoint {
	case "snapshot":
		if from != "" || to != "" || resolution != "" {
			return "", fmt.Errorf("-from/-to/-resolution only apply to -endpoint query")
		}
	case "query":
		add("from", from)
		add("to", to)
		add("resolution", resolution)
	default:
		return "", fmt.Errorf("unknown endpoint %q (want snapshot or query)", endpoint)
	}
	add("fields", fields)
	if top > 0 {
		add("top", fmt.Sprint(top))
	}
	path := "/api/v1/" + endpoint
	if len(params) > 0 {
		path += "?" + strings.Join(params, "&")
	}
	return path, nil
}

// result aggregates one load run.
type result struct {
	requests    uint64
	full        uint64 // 200 with body
	notModified uint64 // 304
	failures    uint64
	bytes       uint64
	elapsed     time.Duration
}

func (r result) render(label string) string {
	var b strings.Builder
	rate := float64(r.requests) / r.elapsed.Seconds()
	fmt.Fprintf(&b, "%s\n", label)
	fmt.Fprintf(&b, "  %d requests in %.2fs = %.0f req/s\n", r.requests, r.elapsed.Seconds(), rate)
	fmt.Fprintf(&b, "  200: %d, 304: %d, failures: %d, %.1f MB transferred (%.1f MB/s)\n",
		r.full, r.notModified, r.failures,
		float64(r.bytes)/1e6, float64(r.bytes)/1e6/r.elapsed.Seconds())
	return b.String()
}

// run drives workers against url until the duration elapses. bust
// appends a unique (harmless) top= parameter per request, defeating the
// server's single-flight response cache — the pre-API baseline where
// every hit re-merges and re-serializes the full snapshot.
func run(url string, workers int, duration time.Duration, conditional, bust bool) result {
	tr := &http.Transport{
		MaxIdleConns:        workers * 2,
		MaxIdleConnsPerHost: workers * 2,
		DisableCompression:  true,
	}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr, Timeout: 30 * time.Second}

	var (
		res      result
		requests atomic.Uint64
		full     atomic.Uint64
		nm       atomic.Uint64
		failures atomic.Uint64
		bytes    atomic.Uint64
		buster   atomic.Uint64
	)
	sep := "?"
	if strings.Contains(url, "?") {
		sep = "&"
	}
	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			etag := ""
			for time.Now().Before(deadline) {
				target := url
				if bust {
					// Unique huge top= values never truncate anything, so
					// the body stays identical while the cache key changes.
					target += sep + fmt.Sprintf("top=%d", 1<<30+buster.Add(1))
				}
				req, err := http.NewRequest(http.MethodGet, target, nil)
				if err != nil {
					failures.Add(1)
					return
				}
				if conditional && etag != "" {
					req.Header.Set("If-None-Match", etag)
				}
				resp, err := client.Do(req)
				if err != nil {
					failures.Add(1)
					continue
				}
				n, _ := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				requests.Add(1)
				bytes.Add(uint64(n))
				switch resp.StatusCode {
				case http.StatusOK:
					full.Add(1)
					if conditional {
						etag = resp.Header.Get("ETag")
					}
				case http.StatusNotModified:
					nm.Add(1)
				default:
					failures.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	res.requests = requests.Load()
	res.full = full.Load()
	res.notModified = nm.Load()
	res.failures = failures.Load()
	res.bytes = bytes.Load()
	return res
}

// runSelf is the self-contained cached-vs-uncached benchmark.
func runSelf(workers int, duration time.Duration, quick bool) error {
	cfg := experiments.QuickConfig()
	if quick {
		cfg.Scale *= 3
	}
	fmt.Printf("bench-api: simulating the study window (scale 1:%d)\n", cfg.Scale)
	simres, err := sim.Run(cfg)
	if err != nil {
		return err
	}

	// Split at the median hour: everything before it is checkpointed
	// history (the stable, cacheable range), everything after feeds the
	// live-ingest loop that runs through the measurements.
	records := simres.Records
	if len(records) < 2 {
		return fmt.Errorf("sim produced %d records", len(records))
	}
	mid := records[len(records)/2].First.Truncate(time.Hour)
	var hist, live []netflow.Record
	for _, r := range records {
		if r.First.Before(mid) {
			hist = append(hist, r)
		} else {
			live = append(live, r)
		}
	}
	if len(hist) == 0 {
		// Degenerate timestamp distribution: split by index so the bench
		// still has a stable historical range.
		hist, live = records[:len(records)/2], records[len(records)/2:]
	}

	dir, err := os.MkdirTemp("", "apiload-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	acfg := streaming.Config{WindowHours: entime.StudyHours() + 24, TopK: 10, DB: simres.GeoDB, Model: simres.Model}
	st, err := store.Open(dir, store.Options{Analytics: acfg})
	if err != nil {
		return err
	}
	defer st.Close()

	for off := 0; off < len(hist); off += 512 {
		end := off + 512
		if end > len(hist) {
			end = len(hist)
		}
		if err := st.Append(hist[off:end]); err != nil {
			return err
		}
	}
	if err := st.Checkpoint(); err != nil {
		return err
	}
	fmt.Printf("bench-api: checkpointed %d historical records; %d live records keep ingesting\n",
		len(hist), len(live))

	// Live ingest in the background: paced appends cycling the remaining
	// records, so snapshot generations keep advancing mid-measurement.
	stop := make(chan struct{})
	var ingested atomic.Uint64
	var ingestWG sync.WaitGroup
	if len(live) > 0 {
		ingestWG.Add(1)
		go func() {
			defer ingestWG.Done()
			t := time.NewTicker(5 * time.Millisecond)
			defer t.Stop()
			off := 0
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					end := off + 128
					if end > len(live) {
						end = len(live)
					}
					if err := st.Append(live[off:end]); err != nil {
						fmt.Fprintf(os.Stderr, "apiload: live append: %v\n", err)
						return
					}
					ingested.Add(uint64(end - off))
					off = end
					if off >= len(live) {
						off = 0 // cycle: the bench needs ingest, not uniqueness
					}
				}
			}
		}()
	}

	srv, err := api.New(api.Config{History: st})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go http.Serve(ln, srv)
	base := "http://" + ln.Addr().String()

	// The historical range ends where live ingest begins, so its ETag
	// stays valid between checkpoints no matter how hard the tail churns.
	queryPath := fmt.Sprintf("/api/v1/query?to=%d", mid.Unix())

	type phase struct {
		name        string
		url         string
		conditional bool
		bust        bool
	}
	phases := []phase{
		// The pre-API baseline: every hit re-merges and re-serializes the
		// full snapshot (the response cache never matches).
		{"uncached full snapshot (marshal per hit)", base + "/api/v1/snapshot", false, true},
		// The single-flight cache alone: full bodies, one marshal per
		// generation change.
		{"cached full snapshot (single-flight)    ", base + "/api/v1/snapshot", false, false},
		// The conditional fast path: 304s for a stable historical range.
		{"conditional (ETag) historical query     ", base + queryPath, true, false},
	}
	results := make([]result, len(phases))
	for i, ph := range phases {
		results[i] = run(ph.url, workers, duration, ph.conditional, ph.bust)
		fmt.Print(results[i].render(ph.name))
	}
	close(stop)
	ingestWG.Wait()

	rates := make([]float64, len(results))
	for i, r := range results {
		rates[i] = float64(r.requests) / r.elapsed.Seconds()
	}
	fmt.Printf("bench-api: live ingest sustained %d records during measurement\n", ingested.Load())
	fmt.Printf("bench-api: conditional reads %.1fx the throughput of uncached full-snapshot reads (%.0f vs %.0f req/s)\n",
		rates[2]/rates[0], rates[2], rates[0])
	if sort.Float64sAreSorted(rates) {
		fmt.Println("bench-api: each configuration is faster than the last, as designed")
	}
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "apiload: "+format+"\n", args...)
	os.Exit(1)
}
