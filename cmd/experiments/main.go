// Command experiments regenerates every artefact of the paper in one run:
// the three figures, the in-text tables (T1-T6) and the reproduction's
// ablations (A1-A3), printing the full report to stdout. EXPERIMENTS.md
// records a snapshot of this output next to the paper's numbers.
//
// The suite analyses and the independent experiments (DNS, the
// architecture comparison, the ablation sweeps, the future-work runs) all
// fan out concurrently; output order stays fixed regardless of completion
// order.
//
// Usage:
//
//	experiments [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"cwatrace/internal/core"
	"cwatrace/internal/experiments"
	"cwatrace/internal/sim"
	"cwatrace/internal/workgroup"
)

func main() {
	quick := flag.Bool("quick", false, "use the reduced configuration (faster, coarser)")
	flag.Parse()

	cfg := sim.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}

	fmt.Printf("=== cwatrace experiment suite (scale 1:%d, seed %d) ===\n\n", cfg.Scale, cfg.Seed)
	suite, err := experiments.RunSuite(cfg)
	if err != nil {
		fatal("suite: %v", err)
	}

	// Everything below only reads the suite (or runs its own simulations),
	// so the whole artefact regeneration fans out at once.
	var (
		rep      *experiments.Report
		dns      experiments.DNSTable
		sampling []experiments.SamplingPoint
		bug      []experiments.BugPoint

		centralizedOut string
		efficacyOut    string
		longTermOut    string
	)
	base := experiments.QuickConfig()
	// Bound the top-level fan-out: the ablation sweeps and the future-work
	// runs each spawn internally parallel simulations, so running all of
	// them at once would oversubscribe the CPU and hold every suite's flow
	// records in memory simultaneously.
	g := workgroup.WithLimit(3)
	g.Go(func() error {
		var err error
		rep, err = suite.Analyze()
		return err
	})
	g.Go(func() error {
		var err error
		dns, err = experiments.DNS(10_000, cfg.Seed)
		if err != nil {
			return fmt.Errorf("dns: %w", err)
		}
		return nil
	})
	g.Go(func() error {
		var err error
		sampling, err = experiments.SamplingAblation(base, []int{1, 4, 16, 64, 256, 1024})
		if err != nil {
			return fmt.Errorf("sampling ablation: %w", err)
		}
		return nil
	})
	g.Go(func() error {
		c, err := experiments.Centralized()
		if err != nil {
			return fmt.Errorf("centralized ablation: %w", err)
		}
		centralizedOut = experiments.RenderCentralized(c)
		return nil
	})
	g.Go(func() error {
		var err error
		bug, err = experiments.BackgroundBugAblation(base, []float64{0, 0.35, 0.7})
		if err != nil {
			return fmt.Errorf("bug ablation: %w", err)
		}
		return nil
	})
	g.Go(func() error {
		points, err := experiments.Efficacy()
		if err != nil {
			return fmt.Errorf("efficacy: %w", err)
		}
		efficacyOut = experiments.RenderEfficacy(points)
		return nil
	})
	g.Go(func() error {
		longTerm, err := experiments.LongTerm()
		if err != nil {
			return fmt.Errorf("long term: %w", err)
		}
		longTermOut = experiments.RenderLongTerm(longTerm)
		return nil
	})
	if err := g.Wait(); err != nil {
		fatal("%v", err)
	}

	// T1 — data set census.
	fmt.Println(core.RenderCensus(suite.Census, cfg.Scale))

	// F2 — temporal adoption.
	fmt.Println(core.RenderFigure2Daily(core.DailyFlows(suite.Kept)))
	fmt.Printf("release-day flow increase: %.1fx (paper: 7.5x)\n", rep.Fig2.ReleaseDayFlowRatio)
	fmt.Printf("resurgence Jun 23-25 vs Jun 20-22: %.2fx\n\n", rep.Fig2.ResurgenceRatio)

	// F3 — geographic adoption.
	fmt.Println(core.RenderFigure3(rep.Fig3Full))
	fmt.Printf("day-one active districts: %d of %d; day-one vs 10-day correlation: %.3f\n\n",
		rep.Fig3DayOne.ActiveDistricts, rep.Fig3DayOne.TotalDistricts, rep.DayOneSimilarity)

	// T2 — persistence.
	fmt.Println(core.RenderPersistence(rep.Persistence))

	// T3 — adoption anchors.
	fmt.Println(experiments.RenderAdoption(rep.Adoption))

	// T4 — outbreaks.
	fmt.Println(core.RenderOutbreaks(rep.Outbreaks))

	// T5 — DNS.
	fmt.Println(experiments.RenderDNS(dns))

	// T6 — first keys.
	fmt.Println(experiments.RenderFirstKeys(rep.FirstKeys))

	// A1 — sampling sweep.
	fmt.Println(experiments.RenderSampling(sampling))

	// A2 — architecture comparison.
	fmt.Println(centralizedOut)

	// A3 — background bug sweep.
	fmt.Println(experiments.RenderBug(bug))

	// A4 — adoption efficacy (the paper's motivation).
	fmt.Println(efficacyOut)

	// FW1 — app identification from periodic requests (future work).
	fmt.Println(experiments.RenderAppID(rep.AppID))

	// FW3 — long-term interest (future work).
	fmt.Println(longTermOut)

	// FW2 — news attention vs traffic (future work); omitted when the
	// window cannot support the correlation.
	if rep.NewsOK {
		fmt.Println("News attention vs traffic (FW2 — the paper's future work)")
		fmt.Printf("  attention vs daily traffic growth (trace only):   r = %.3f\n", rep.NewsTrace)
		fmt.Printf("  attention vs true website visits (ground truth):  r = %.3f\n", rep.NewsTruth)
		fmt.Println("  (news strongly drives human visits; the app's automatic syncs and growing")
		fmt.Println("   key packages dilute that signal in the aggregate trace — quantifying why")
		fmt.Println("   the paper's proposed news-interest analysis is hard at the flow level)")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
