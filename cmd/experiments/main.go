// Command experiments regenerates every artefact of the paper in one run:
// the three figures, the in-text tables (T1-T6) and the reproduction's
// ablations (A1-A3), printing the full report to stdout. EXPERIMENTS.md
// records a snapshot of this output next to the paper's numbers.
//
// Usage:
//
//	experiments [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"cwatrace/internal/core"
	"cwatrace/internal/experiments"
	"cwatrace/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "use the reduced configuration (faster, coarser)")
	flag.Parse()

	cfg := sim.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}

	fmt.Printf("=== cwatrace experiment suite (scale 1:%d, seed %d) ===\n\n", cfg.Scale, cfg.Seed)
	suite, err := experiments.RunSuite(cfg)
	if err != nil {
		fatal("suite: %v", err)
	}

	// T1 — data set census.
	fmt.Println(core.RenderCensus(suite.Census, cfg.Scale))

	// F2 — temporal adoption.
	fig2, err := suite.Figure2()
	if err != nil {
		fatal("figure 2: %v", err)
	}
	fmt.Println(core.RenderFigure2Daily(core.DailyFlows(suite.Kept)))
	fmt.Printf("release-day flow increase: %.1fx (paper: 7.5x)\n", fig2.ReleaseDayFlowRatio)
	fmt.Printf("resurgence Jun 23-25 vs Jun 20-22: %.2fx\n\n", fig2.ResurgenceRatio)

	// F3 — geographic adoption.
	full, dayOne, similarity, err := suite.Figure3()
	if err != nil {
		fatal("figure 3: %v", err)
	}
	fmt.Println(core.RenderFigure3(full))
	fmt.Printf("day-one active districts: %d of %d; day-one vs 10-day correlation: %.3f\n\n",
		dayOne.ActiveDistricts, dayOne.TotalDistricts, similarity)

	// T2 — persistence.
	fmt.Println(core.RenderPersistence(suite.Persistence()))

	// T3 — adoption anchors.
	adoption, err := suite.Adoption()
	if err != nil {
		fatal("adoption: %v", err)
	}
	fmt.Println(experiments.RenderAdoption(adoption))

	// T4 — outbreaks.
	fmt.Println(core.RenderOutbreaks(suite.Outbreaks()))

	// T5 — DNS.
	dns, err := experiments.DNS(10_000, cfg.Seed)
	if err != nil {
		fatal("dns: %v", err)
	}
	fmt.Println(experiments.RenderDNS(dns))

	// T6 — first keys.
	fmt.Println(experiments.RenderFirstKeys(suite.FirstKeys()))

	// A1 — sampling sweep.
	base := experiments.QuickConfig()
	sampling, err := experiments.SamplingAblation(base, []int{1, 4, 16, 64, 256, 1024})
	if err != nil {
		fatal("sampling ablation: %v", err)
	}
	fmt.Println(experiments.RenderSampling(sampling))

	// A2 — architecture comparison.
	cmp, err := experiments.Centralized()
	if err != nil {
		fatal("centralized ablation: %v", err)
	}
	fmt.Println(experiments.RenderCentralized(cmp))

	// A3 — background bug sweep.
	bug, err := experiments.BackgroundBugAblation(base, []float64{0, 0.35, 0.7})
	if err != nil {
		fatal("bug ablation: %v", err)
	}
	fmt.Println(experiments.RenderBug(bug))

	// A4 — adoption efficacy (the paper's motivation).
	eff, err := experiments.Efficacy()
	if err != nil {
		fatal("efficacy: %v", err)
	}
	fmt.Println(experiments.RenderEfficacy(eff))

	// FW1 — app identification from periodic requests (future work).
	appID, err := suite.AppID()
	if err != nil {
		fatal("app identification: %v", err)
	}
	fmt.Println(experiments.RenderAppID(appID))

	// FW3 — long-term interest (future work).
	longTerm, err := experiments.LongTerm()
	if err != nil {
		fatal("long term: %v", err)
	}
	fmt.Println(experiments.RenderLongTerm(longTerm))

	// FW2 — news attention vs traffic (future work).
	if fromTrace, truth, err := suite.NewsCorrelation(); err == nil {
		fmt.Println("News attention vs traffic (FW2 — the paper's future work)")
		fmt.Printf("  attention vs daily traffic growth (trace only):   r = %.3f\n", fromTrace)
		fmt.Printf("  attention vs true website visits (ground truth):  r = %.3f\n", truth)
		fmt.Println("  (news strongly drives human visits; the app's automatic syncs and growing")
		fmt.Println("   key packages dilute that signal in the aggregate trace — quantifying why")
		fmt.Println("   the paper's proposed news-interest analysis is hard at the flow level)")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
