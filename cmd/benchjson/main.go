// Command benchjson runs the ingest throughput benchmark and writes the
// result as machine-readable JSON, so CI can archive per-commit numbers
// (records/s, ns/op, B/op, allocs/op and the derived allocs/record)
// instead of burying them in log output. The schema is flat on purpose:
// one object per benchmark, ready for jq or a spreadsheet without a
// parser for `go test -bench` text.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// result is one parsed benchmark line.
type result struct {
	Name          string  `json:"name"`
	Iterations    int64   `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	RecordsPerSec float64 `json:"records_per_sec,omitempty"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	// RecordsPerOp and AllocsPerRecord are derived from records/s and
	// ns/op; zero when the benchmark does not report records/s.
	RecordsPerOp    float64 `json:"records_per_op,omitempty"`
	AllocsPerRecord float64 `json:"allocs_per_record,omitempty"`
}

// report is the file schema.
type report struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	NumCPU      int      `json:"num_cpu"`
	Bench       string   `json:"bench"`
	Package     string   `json:"package"`
	Count       int      `json:"count"`
	Results     []result `json:"results"`
}

func main() {
	bench := flag.String("bench", "BenchmarkIngestPipeline", "benchmark regexp passed to go test -bench")
	pkg := flag.String("pkg", "./internal/ingest/", "package to benchmark")
	count := flag.Int("count", 1, "benchmark repetitions (-count)")
	out := flag.String("o", "BENCH_ingest.json", "output file")
	clusterMode := flag.Bool("cluster", false, "measure router scatter-gather latency at 1/2/4 nodes instead of go test -bench")
	iters := flag.Int("iters", 150, "requests per latency distribution under -cluster")
	obsMode := flag.Bool("obs", false, "compare instrumented vs disabled ingest modes and report telemetry overhead")
	queryMode := flag.Bool("query", false, "measure long-horizon query latency (raw vs tiered resolutions over a simulated year) instead of go test -bench")
	days := flag.Int("days", 364, "with -query: days of simulated history to build")
	maxOverhead := flag.Float64("max-overhead-pct", 3, "with -obs: fail when instrumentation overhead exceeds this percentage (0 disables the gate)")
	flag.Parse()

	if *clusterMode {
		if err := runCluster(*out, *iters); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *obsMode {
		if err := runObs(*out, *count, *maxOverhead); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *queryMode {
		if err := runQuery(*out, *days, *iters); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cmd := exec.Command("go", "test", "-run", "XXX",
		"-bench", *bench, "-benchmem", "-count", strconv.Itoa(*count), *pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n%s", err, buf.Bytes())
		os.Exit(1)
	}
	os.Stdout.Write(buf.Bytes())

	results := parseBench(buf.String())
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines matched %q\n", *bench)
		os.Exit(1)
	}
	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Bench:       *bench,
		Package:     *pkg,
		Count:       *count,
		Results:     results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d results)\n", *out, len(results))
}

// parseBench extracts benchmark lines from `go test -bench` output. Each
// line is "BenchmarkName-P  iterations  value unit  value unit ...";
// units tag the values, so column order does not matter.
func parseBench(out string) []result {
	var results []result
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: trimProcs(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "records/s":
				r.RecordsPerSec = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		if r.RecordsPerSec > 0 && r.NsPerOp > 0 {
			r.RecordsPerOp = r.RecordsPerSec * r.NsPerOp / 1e9
			r.AllocsPerRecord = r.AllocsPerOp / r.RecordsPerOp
		}
		results = append(results, r)
	}
	return results
}

// trimProcs drops the trailing GOMAXPROCS suffix ("-8") the bench runner
// appends, keeping names stable across machines.
func trimProcs(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
