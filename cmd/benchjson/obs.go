package main

// The -obs mode: proof that the telemetry layer is effectively free.
// BenchmarkIngestPipeline runs each ingest mode twice — once with
// obs.Disabled (a nil registry, every instrument a no-op) and once with
// the full observability stack: a live registry (sampled stage
// histograms, per-lane gauges, watermark tracking) plus the flight
// recorder's span tracer and event ring — and this mode pairs them up
// and reports the throughput delta as overhead_pct. The gate (default
// 3%) fails the run when the instrumented pipeline falls more than
// that behind the baseline, so the <3% contract covers span tracing
// too.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"time"
)

// obsPair is one ingest mode's baseline/instrumented comparison.
type obsPair struct {
	Mode         string `json:"mode"`
	Baseline     result `json:"baseline"`
	Instrumented result `json:"instrumented"`
	// OverheadPct is the throughput cost of instrumentation in percent:
	// (baseline - instrumented) / baseline * 100 over records/s.
	// Negative values are run-to-run noise in the instrumented run's
	// favor.
	OverheadPct float64 `json:"overhead_pct"`
}

// obsReport is the BENCH_obs.json schema.
type obsReport struct {
	GeneratedAt    string    `json:"generated_at"`
	GoVersion      string    `json:"go_version"`
	GOOS           string    `json:"goos"`
	GOARCH         string    `json:"goarch"`
	NumCPU         int       `json:"num_cpu"`
	Count          int       `json:"count"`
	MaxOverheadPct float64   `json:"max_overhead_pct"`
	Pairs          []obsPair `json:"pairs"`
}

// runObs benchmarks the instrumented ingest modes against their
// disabled baselines and writes the comparison to out.
//
// Each (mode, variant) runs as its own short go-test invocation, the
// baseline/instrumented order alternates between rounds, and the
// per-variant MEDIAN records/s decides the comparison. All three choices
// fight the same enemy: on a busy or thermally drifting machine, run
// order and outlier runs systematically masquerade as instrumentation
// overhead (both signs were observed during development). Alternation
// cancels ordering bias, medians drop the outliers.
func runObs(out string, count int, maxOverheadPct float64) error {
	if count < 5 {
		count = 5 // medians need repetitions; one or two runs is all noise
	}
	samples := make(map[string][]result)
	runOne := func(name string) error {
		cmd := exec.Command("go", "test", "-run", "XXX",
			"-bench", "^BenchmarkIngestPipeline$/^"+name+"$", "-benchmem",
			"-benchtime", "0.5s", "./internal/ingest/")
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("%v\n%s", err, buf.Bytes())
		}
		os.Stdout.Write(buf.Bytes())
		for _, r := range parseBench(buf.String()) {
			samples[r.Name] = append(samples[r.Name], r)
		}
		return nil
	}
	for round := 0; round < count; round++ {
		for _, mode := range []string{"serial", "parallel"} {
			pair := []string{mode, mode + "_instrumented"}
			if round%2 == 1 {
				pair[0], pair[1] = pair[1], pair[0]
			}
			for _, name := range pair {
				if err := runOne(name); err != nil {
					return err
				}
			}
		}
	}

	// Median per benchmark name.
	best := make(map[string]result)
	for name, rs := range samples {
		sort.Slice(rs, func(i, j int) bool { return rs[i].RecordsPerSec < rs[j].RecordsPerSec })
		best[name] = rs[len(rs)/2]
	}

	rep := obsReport{
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		NumCPU:         runtime.NumCPU(),
		Count:          count,
		MaxOverheadPct: maxOverheadPct,
	}
	const prefix = "BenchmarkIngestPipeline/"
	for _, mode := range []string{"serial", "parallel"} {
		base, ok := best[prefix+mode]
		if !ok || base.RecordsPerSec == 0 {
			return fmt.Errorf("no baseline result for mode %q", mode)
		}
		instr, ok := best[prefix+mode+"_instrumented"]
		if !ok || instr.RecordsPerSec == 0 {
			return fmt.Errorf("no instrumented result for mode %q", mode)
		}
		rep.Pairs = append(rep.Pairs, obsPair{
			Mode:         mode,
			Baseline:     base,
			Instrumented: instr,
			OverheadPct:  (base.RecordsPerSec - instr.RecordsPerSec) / base.RecordsPerSec * 100,
		})
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	for _, p := range rep.Pairs {
		fmt.Fprintf(os.Stderr, "benchjson: obs %s overhead %.2f%% (%.0f -> %.0f records/s)\n",
			p.Mode, p.OverheadPct, p.Baseline.RecordsPerSec, p.Instrumented.RecordsPerSec)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d pairs)\n", out, len(rep.Pairs))
	if maxOverheadPct > 0 {
		for _, p := range rep.Pairs {
			if p.OverheadPct > maxOverheadPct {
				return fmt.Errorf("mode %s: instrumentation overhead %.2f%% exceeds the %.0f%% budget",
					p.Mode, p.OverheadPct, maxOverheadPct)
			}
		}
	}
	return nil
}
