package main

// The long-horizon query benchmark behind `benchjson -query`
// (BENCH_query.json): a durable store holding a simulated year of daily-
// checkpointed traffic, queried at 1-week, 1-month and 1-year spans at
// every resolution — hour (the exact raw path, merging checkpoint
// frames) against day and week (the tiered planner over downsampled
// frames plus the raw residual). Each configuration reports p50/p99/mean
// latency; the sketched distinct-prefix count is checked against the
// generator's exact ground truth wherever the selected frames align
// with the span, so the error bound lands in the same file as the
// speedup it buys.

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"runtime"
	"sort"
	"time"

	"cwatrace/internal/core"
	"cwatrace/internal/entime"
	"cwatrace/internal/netflow"
	"cwatrace/internal/store"
	"cwatrace/internal/streaming"
	"cwatrace/internal/tier"
)

// queryResult is one (span, resolution) latency distribution.
type queryResult struct {
	Name       string  `json:"name"`
	SpanDays   int     `json:"span_days"`
	Resolution string  `json:"resolution"`
	Iterations int     `json:"iterations"`
	P50Ns      float64 `json:"p50_ns"`
	P99Ns      float64 `json:"p99_ns"`
	MeanNs     float64 `json:"mean_ns"`
	// Frames counts raw checkpoint frames merged (the whole answer at
	// hour resolution, the residual tail otherwise); TierFrames the
	// downsampled frames the planner selected.
	Frames     int `json:"frames"`
	TierFrames int `json:"tier_frames,omitempty"`
	// DistinctEstimate is the sketched distinct-prefix count of a tiered
	// answer. DistinctExact/DistinctErrPct are filled only when the
	// selected frames align with the span (day resolution, or any
	// resolution over the full history), so the comparison is honest.
	DistinctEstimate uint64  `json:"distinct_estimate,omitempty"`
	DistinctExact    uint64  `json:"distinct_exact,omitempty"`
	DistinctErrPct   float64 `json:"distinct_err_pct,omitempty"`
}

// queryReport is the BENCH_query.json schema.
type queryReport struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	NumCPU      int           `json:"num_cpu"`
	Days        int           `json:"days"`
	Records     int           `json:"records"`
	RawFrames   int           `json:"raw_frames"`
	DayFrames   int           `json:"day_frames"`
	WeekFrames  int           `json:"week_frames"`
	Results     []queryResult `json:"results"`
}

// Per-day workload shape: newClients fresh /24 prefixes every day plus
// persistent prefixes present every day, across busyHours hours — small
// enough to build a year in seconds, structured enough that distinct
// counts have exact closed forms (day d introduces newClients prefixes
// nobody else uses, so D aligned days hold D*newClients+persistent).
const (
	benchNewClients = 6
	benchPersistent = 8
	benchBusyHours  = 3
)

// benchRecord fabricates a kept record in hour h from prefix-id id
// (each id owns its own /24: the id fills the second and third octets).
func benchRecord(h int64, id int, bytes uint64) netflow.Record {
	at := entime.StudyStart.Add(time.Duration(h) * time.Hour)
	return netflow.Record{
		Key: netflow.Key{
			Src:     core.DefaultFilter().ServerPrefixes[0].Addr(),
			Dst:     netip.AddrFrom4([4]byte{10, byte(id >> 8), byte(id), 1}),
			SrcPort: netflow.PortHTTPS,
			DstPort: uint16(40000 + id%20000),
			Proto:   netflow.ProtoTCP,
		},
		Packets:  3,
		Bytes:    bytes,
		First:    at,
		Last:     at.Add(time.Second),
		Exporter: "ISP/BE-000",
	}
}

// buildYearStore ingests days of synthetic traffic with one checkpoint
// per day, so the store folds day and week tier frames exactly as a
// year-long capture would.
func buildYearStore(dir string, days int) (*store.Store, int, error) {
	st, err := store.Open(dir, store.Options{
		Analytics: streaming.Config{WindowHours: days*24 + 48, TopK: 10},
		Sync:      store.SyncNever,
		Tier:      true,
	})
	if err != nil {
		return nil, 0, err
	}
	records := 0
	for d := 0; d < days; d++ {
		var batch []netflow.Record
		for hh := 0; hh < benchBusyHours; hh++ {
			h := int64(d*24 + hh*7)
			for c := 0; c < benchNewClients; c++ {
				batch = append(batch, benchRecord(h, d*benchNewClients+c, uint64(500+c)))
			}
			for p := 0; p < benchPersistent; p++ {
				batch = append(batch, benchRecord(h, 60000+p, 700))
			}
		}
		if err := st.Append(batch); err != nil {
			st.Close()
			return nil, 0, err
		}
		records += len(batch)
		if err := st.Checkpoint(); err != nil {
			st.Close()
			return nil, 0, err
		}
	}
	return st, records, nil
}

// runQuery is the `-query` mode.
func runQuery(out string, days, iters int) error {
	if days < 14 {
		return fmt.Errorf("-days %d: need at least two weeks", days)
	}
	dir, err := os.MkdirTemp("", "benchquery")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	t0 := time.Now()
	st, records, err := buildYearStore(dir, days)
	if err != nil {
		return err
	}
	defer st.Close()
	m := st.Metrics()
	fmt.Fprintf(os.Stderr, "benchjson: built %d-day store in %s: %d records, %d raw / %d day / %d week frames\n",
		days, time.Since(t0).Round(time.Millisecond), records, m.Frames, m.TierFramesDay, m.TierFramesWeek)

	rep := queryReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Days:        days,
		Records:     records,
		RawFrames:   m.Frames,
		DayFrames:   m.TierFramesDay,
		WeekFrames:  m.TierFramesWeek,
	}

	end := entime.StudyStart.Add(time.Duration(days) * 24 * time.Hour)
	spans := []struct {
		name string
		days int
	}{
		{"1-week", 7},
		{"1-month", 30},
		{"1-year", days},
	}
	resolutions := []tier.Resolution{tier.ResolutionHour, tier.ResolutionDay, tier.ResolutionWeek}
	for _, span := range spans {
		from := end.Add(-time.Duration(span.days) * 24 * time.Hour)
		for _, res := range resolutions {
			qr, err := benchQuerySpan(st, from, end, res, span.name, span.days, days, iters)
			if err != nil {
				return fmt.Errorf("%s at %s: %w", span.name, res, err)
			}
			rep.Results = append(rep.Results, *qr)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d results)\n", out, len(rep.Results))
	for _, r := range rep.Results {
		fmt.Fprintf(os.Stderr, "  %-22s p50=%.2fms p99=%.2fms", r.Name,
			r.P50Ns/1e6, r.P99Ns/1e6)
		if r.DistinctExact > 0 {
			fmt.Fprintf(os.Stderr, " distinct ~%d vs %d exact (%.2f%% err)",
				r.DistinctEstimate, r.DistinctExact, r.DistinctErrPct)
		}
		fmt.Fprintln(os.Stderr)
	}
	return nil
}

// benchQuerySpan times one (span, resolution) configuration and checks
// the sketch against ground truth where the coverage aligns.
func benchQuerySpan(st *store.Store, from, to time.Time, res tier.Resolution, spanName string, spanDays, totalDays, iters int) (*queryResult, error) {
	lat := make([]time.Duration, 0, iters)
	var last *store.QueryResult
	for i := 0; i < iters; i++ {
		start := time.Now()
		r, err := st.QueryResolution(from, to, res)
		if err != nil {
			return nil, err
		}
		lat = append(lat, time.Since(start))
		last = r
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	pct := func(p float64) float64 { return float64(lat[int(p*float64(len(lat)-1))]) }
	qr := &queryResult{
		Name:       fmt.Sprintf("%s/%s", spanName, res),
		SpanDays:   spanDays,
		Resolution: string(res),
		Iterations: len(lat),
		P50Ns:      pct(0.50),
		P99Ns:      pct(0.99),
		MeanNs:     float64(sum) / float64(len(lat)),
		Frames:     last.Frames,
	}
	if last.LongHorizon != nil {
		qr.TierFrames = last.LongHorizon.TierFrames
		qr.DistinctEstimate = last.LongHorizon.DistinctPrefixes
		// Ground truth is well-defined only when the selected frames
		// cover exactly the span: day frames align with any whole-day
		// span; coarser frames align when the span is the whole history.
		// (A week frame straddling the span start would honestly cover
		// extra days, so comparing it to the span's count would be
		// reporting planner semantics as sketch error.)
		if res == tier.ResolutionDay || spanDays == totalDays {
			qr.DistinctExact = uint64(spanDays*benchNewClients + benchPersistent)
			qr.DistinctErrPct = 100 * (float64(qr.DistinctEstimate) - float64(qr.DistinctExact)) / float64(qr.DistinctExact)
		}
	}
	return qr, nil
}
