package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"time"

	"cwatrace/internal/api"
	"cwatrace/internal/cluster"
	"cwatrace/internal/experiments"
	"cwatrace/internal/netflow"
	"cwatrace/internal/sim"
	"cwatrace/internal/store"
	"cwatrace/internal/streaming"
)

// clusterResult is one latency distribution: a router endpoint hit over
// a fleet of a given size.
type clusterResult struct {
	Name       string  `json:"name"`
	Nodes      int     `json:"nodes"`
	Iterations int     `json:"iterations"`
	P50Ns      float64 `json:"p50_ns"`
	P99Ns      float64 `json:"p99_ns"`
	MeanNs     float64 `json:"mean_ns"`
}

// clusterReport is the BENCH_cluster.json schema: flat like the ingest
// report, one object per (endpoint mode, fleet size).
type clusterReport struct {
	GeneratedAt string          `json:"generated_at"`
	GoVersion   string          `json:"go_version"`
	GOOS        string          `json:"goos"`
	GOARCH      string          `json:"goarch"`
	NumCPU      int             `json:"num_cpu"`
	Records     int             `json:"records"`
	Results     []clusterResult `json:"results"`
}

// runCluster measures scatter-gather latency through a real router HTTP
// surface at fleet sizes 1, 2 and 4: in-process API nodes over durable
// stores holding a sharded quick-sim trace, fronted by a cluster fleet.
// Two modes per size: a full fetch (fan-out + merge + render) and a
// revalidation (fan-out + composite validator match, bodyless 304).
func runCluster(out string, iters int) error {
	cfg := experiments.QuickConfig()
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	rep := clusterReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Records:     len(res.Records),
	}
	acfg := streaming.Config{
		Origin:      cfg.Start,
		WindowHours: int(cfg.End.Sub(cfg.Start)/time.Hour) + 24,
		DB:          res.GeoDB,
	}
	for _, n := range []int{1, 2, 4} {
		results, err := benchFleet(n, iters, acfg, res)
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results, results...)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d results)\n", out, len(rep.Results))
	return nil
}

// benchFleet stands up n shard nodes plus a router and times the two
// router request modes.
func benchFleet(n, iters int, acfg streaming.Config, res *sim.Result) ([]clusterResult, error) {
	shards := make([][]netflow.Record, n)
	for i := range res.Records {
		s := cluster.Owner(&res.Records[i], res.GeoDB, n)
		shards[s] = append(shards[s], res.Records[i])
	}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		dir, err := os.MkdirTemp("", "benchcluster")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		st, err := store.Open(dir, store.Options{Analytics: acfg, Sync: store.SyncNever})
		if err != nil {
			return nil, err
		}
		defer st.Close()
		if err := st.Append(shards[i]); err != nil {
			return nil, err
		}
		srv, err := api.New(api.Config{History: st})
		if err != nil {
			return nil, err
		}
		ts := httptest.NewServer(srv)
		defer ts.Close()
		addrs[i] = ts.Listener.Addr().String()
	}
	fleet, err := cluster.New(addrs, cluster.Options{})
	if err != nil {
		return nil, err
	}
	rsrv, err := api.New(api.Config{Fanout: fleet})
	if err != nil {
		return nil, err
	}
	router := httptest.NewServer(rsrv)
	defer router.Close()
	url := router.URL + "/api/v1/snapshot"

	// Warm once and capture the composite validator for the 304 mode.
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag == "" {
		return nil, fmt.Errorf("warm-up fetch: status %d, etag %q", resp.StatusCode, etag)
	}

	full, err := timeRequests(url, "", iters, http.StatusOK)
	if err != nil {
		return nil, err
	}
	reval, err := timeRequests(url, etag, iters, http.StatusNotModified)
	if err != nil {
		return nil, err
	}
	return []clusterResult{
		summarize("fanout_full", n, full),
		summarize("fanout_304", n, reval),
	}, nil
}

// timeRequests issues iters sequential GETs and returns per-request
// wall-clock latencies.
func timeRequests(url, etag string, iters, wantStatus int) ([]time.Duration, error) {
	lat := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		if etag != "" {
			req.Header.Set("If-None-Match", etag)
		}
		start := time.Now()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			return nil, fmt.Errorf("request %d: status %d, want %d", i, resp.StatusCode, wantStatus)
		}
		lat = append(lat, time.Since(start))
	}
	return lat, nil
}

func summarize(name string, nodes int, lat []time.Duration) clusterResult {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	pct := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return float64(lat[i])
	}
	return clusterResult{
		Name:       fmt.Sprintf("%s/nodes=%d", name, nodes),
		Nodes:      nodes,
		Iterations: len(lat),
		P50Ns:      pct(0.50),
		P99Ns:      pct(0.99),
		MeanNs:     float64(sum) / float64(len(lat)),
	}
}
