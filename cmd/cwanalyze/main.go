// Command cwanalyze runs the paper's measurement pipeline over a captured
// trace: the data-set filter census (T1), the Figure-2 hourly series, the
// Figure-3 district aggregation, the prefix-persistence statistics (T2)
// and the outbreak analysis (T4).
//
// Usage:
//
//	cwanalyze -trace trace.cwaflow -geodb geodb.jsonl [-fig2] [-fig3]
//	          [-persistence] [-outbreaks] [-census]
//
// Without selection flags every analysis runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"cwatrace/internal/adoption"
	"cwatrace/internal/core"
	"cwatrace/internal/geo"
	"cwatrace/internal/geodb"
	"cwatrace/internal/trace"
)

func main() {
	var (
		tracePath   = flag.String("trace", "trace.cwaflow", "binary trace input")
		geoPath     = flag.String("geodb", "geodb.jsonl", "geolocation sidecar input")
		fig2        = flag.Bool("fig2", false, "hourly traffic series (Figure 2)")
		fig3        = flag.Bool("fig3", false, "district heatmap (Figure 3)")
		persistence = flag.Bool("persistence", false, "prefix persistence (T2)")
		outbreaks   = flag.Bool("outbreaks", false, "outbreak analysis (T4)")
		census      = flag.Bool("census", false, "filter census (T1)")
		scale       = flag.Int("scale", 2000, "population scale of the trace, for scaled counts")
	)
	flag.Parse()
	all := !*fig2 && !*fig3 && !*persistence && !*outbreaks && !*census

	tf, err := os.Open(*tracePath)
	if err != nil {
		fatal("opening trace: %v", err)
	}
	defer tf.Close()
	records, err := trace.ReadAll(tf)
	if err != nil {
		fatal("reading trace: %v", err)
	}

	gf, err := os.Open(*geoPath)
	if err != nil {
		fatal("opening geodb sidecar: %v", err)
	}
	defer gf.Close()
	db, err := geodb.Read(gf)
	if err != nil {
		fatal("reading geodb sidecar: %v", err)
	}

	model := geo.Germany()
	kept, cen := core.ApplyFilter(records, core.DefaultFilter())

	if all || *census {
		fmt.Println(core.RenderCensus(cen, *scale))
	}
	if all || *fig2 {
		res, err := core.Figure2(kept, adoption.DefaultCurve())
		if err != nil {
			fatal("figure 2: %v", err)
		}
		fmt.Println(core.RenderFigure2(res))
		fmt.Println(core.RenderFigure2Daily(core.DailyFlows(kept)))
	}
	if all || *fig3 {
		from, to := core.StudyWindow()
		res := core.Figure3(kept, db, model, from, to)
		fmt.Println(core.RenderFigure3(res))

		d1from, d1to := core.FirstDayWindow()
		day1 := core.Figure3(kept, db, model, d1from, d1to)
		if r, err := core.SpreadSimilarity(day1, res); err == nil {
			fmt.Printf("day-one vs 10-day spread correlation: %.3f (paper: almost the same)\n\n", r)
		}
	}
	if all || *persistence {
		fmt.Println(core.RenderPersistence(core.PrefixPersistence(kept)))
	}
	if all || *outbreaks {
		fmt.Println(core.RenderOutbreaks(core.AnalyzeOutbreaks(kept, db, model)))
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwanalyze: "+format+"\n", args...)
	os.Exit(1)
}
