// Command cwanalyze runs the paper's measurement pipeline over a captured
// trace: the data-set filter census (T1), the Figure-2 hourly series, the
// Figure-3 district aggregation, the prefix-persistence statistics (T2)
// and the outbreak analysis (T4).
//
// Usage:
//
//	cwanalyze -trace trace.cwaflow -geodb geodb.jsonl [-fig2] [-fig3]
//	          [-persistence] [-outbreaks] [-census]
//
//	cwanalyze -data-dir DIR [-from T] [-to T] [-resolution R]
//
//	cwanalyze -addr HOST:PORT [-from T] [-to T] [-resolution R]
//
// Without selection flags every analysis runs.
//
// With -data-dir the input is a collectord durable store instead of a
// trace file: the tool opens the store read-only, merges the checkpoint
// frames (plus any WAL tail the collector had not folded yet) covering
// [-from, -to) — RFC 3339 timestamps or unix seconds, both optional —
// and renders the historical range: census, hourly series, spikes, top
// prefixes and district rollups (plus the Figure-2 table whenever the
// range covers the full study window).
//
// With -addr the same historical range comes from a live collectord
// over its versioned API (/api/v1/query, via the typed internal/api
// client with retries and ETag-aware caching) — no filesystem access,
// same output as a local -data-dir read of the same store.
//
// -resolution picks the answer resolution on both historical paths:
// hour (the exact default), day or week (downsampled tier frames plus
// the exact raw residual, with sketch-estimated distinct-prefix and
// presence figures), or auto (pick by span). Day/week answers print the
// long-horizon summary instead of the hourly tables.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"cwatrace/internal/adoption"
	"cwatrace/internal/api/client"
	"cwatrace/internal/core"
	"cwatrace/internal/geo"
	"cwatrace/internal/geodb"
	"cwatrace/internal/store"
	"cwatrace/internal/streaming"
	"cwatrace/internal/tier"
	"cwatrace/internal/trace"
)

func main() {
	var (
		tracePath   = flag.String("trace", "trace.cwaflow", "binary trace input")
		geoPath     = flag.String("geodb", "geodb.jsonl", "geolocation sidecar input")
		fig2        = flag.Bool("fig2", false, "hourly traffic series (Figure 2)")
		fig3        = flag.Bool("fig3", false, "district heatmap (Figure 3)")
		persistence = flag.Bool("persistence", false, "prefix persistence (T2)")
		outbreaks   = flag.Bool("outbreaks", false, "outbreak analysis (T4)")
		census      = flag.Bool("census", false, "filter census (T1)")
		scale       = flag.Int("scale", 2000, "population scale of the trace, for scaled counts")

		dataDir = flag.String("data-dir", "", "collectord durable store directory (replaces -trace)")
		addr    = flag.String("addr", "", "live collectord API address, e.g. 127.0.0.1:8055 (replaces -trace/-data-dir)")
		fromArg = flag.String("from", "", "historical range start (RFC 3339, e.g. 2020-06-16T00:00:00Z, or unix seconds, e.g. 1592265600; empty = store origin)")
		toArg   = flag.String("to", "", "historical range end, exclusive (RFC 3339 or unix seconds; empty = end of history)")
		resArg  = flag.String("resolution", "", "answer resolution: hour (exact, default), day, week or auto")
	)
	flag.Parse()
	all := !*fig2 && !*fig3 && !*persistence && !*outbreaks && !*census

	resolution, err := tier.ParseResolution(*resArg)
	if err != nil {
		fatal("-resolution: %v", err)
	}
	if *addr != "" {
		if err := analyzeRemote(*addr, *fromArg, *toArg, *resArg, *scale); err != nil {
			fatal("%v", err)
		}
		return
	}
	if *dataDir != "" {
		if err := analyzeStore(*dataDir, *geoPath, *fromArg, *toArg, resolution, *scale); err != nil {
			fatal("%v", err)
		}
		return
	}

	tf, err := os.Open(*tracePath)
	if err != nil {
		fatal("opening trace: %v", err)
	}
	defer tf.Close()
	records, err := trace.ReadAll(tf)
	if err != nil {
		fatal("reading trace: %v", err)
	}

	gf, err := os.Open(*geoPath)
	if err != nil {
		fatal("opening geodb sidecar: %v", err)
	}
	defer gf.Close()
	db, err := geodb.Read(gf)
	if err != nil {
		fatal("reading geodb sidecar: %v", err)
	}

	model := geo.Germany()
	kept, cen := core.ApplyFilter(records, core.DefaultFilter())

	if all || *census {
		fmt.Println(core.RenderCensus(cen, *scale))
	}
	if all || *fig2 {
		res, err := core.Figure2(kept, adoption.DefaultCurve())
		if err != nil {
			fatal("figure 2: %v", err)
		}
		fmt.Println(core.RenderFigure2(res))
		fmt.Println(core.RenderFigure2Daily(core.DailyFlows(kept)))
	}
	if all || *fig3 {
		from, to := core.StudyWindow()
		res := core.Figure3(kept, db, model, from, to)
		fmt.Println(core.RenderFigure3(res))

		d1from, d1to := core.FirstDayWindow()
		day1 := core.Figure3(kept, db, model, d1from, d1to)
		if r, err := core.SpreadSimilarity(day1, res); err == nil {
			fmt.Printf("day-one vs 10-day spread correlation: %.3f (paper: almost the same)\n\n", r)
		}
	}
	if all || *persistence {
		fmt.Println(core.RenderPersistence(core.PrefixPersistence(kept)))
	}
	if all || *outbreaks {
		fmt.Println(core.RenderOutbreaks(core.AnalyzeOutbreaks(kept, db, model)))
	}
}

// analyzeStore serves the historical range straight from a collectord
// data dir: no trace replay, just checkpoint-frame merging.
func analyzeStore(dir, geoPath, fromArg, toArg string, resolution tier.Resolution, scale int) error {
	from, err := store.ParseTime(fromArg)
	if err != nil {
		return fmt.Errorf("-from: %w", err)
	}
	to, err := store.ParseTime(toArg)
	if err != nil {
		return fmt.Errorf("-to: %w", err)
	}

	// The geodb sidecar is optional here: district counts live inside the
	// checkpoint frames, the sidecar only adds names for NEW records, and
	// a read-only open ingests none. The model still resolves names.
	opts := store.Options{ReadOnly: true}
	opts.Analytics.Model = geo.Germany()
	if f, err := os.Open(geoPath); err == nil {
		db, rerr := geodb.Read(f)
		f.Close()
		if rerr != nil {
			return fmt.Errorf("reading geodb sidecar: %w", rerr)
		}
		opts.Analytics.DB = db
	}

	st, err := store.Open(dir, opts)
	if err != nil {
		return err
	}
	defer st.Close()
	m := st.Metrics()
	fmt.Printf("store %s: %d checkpoint frames (%d records), %d un-checkpointed WAL records\n",
		dir, m.Frames, m.FrameRecords, m.RecoveredWALRecords)

	res, err := st.QueryResolution(from, to, resolution)
	if err != nil {
		return err
	}
	fmt.Printf("range [%s, %s): merged %d frames (tail included: %v)\n\n",
		timeBound(from, "origin"), timeBound(to, "end"), res.Frames, res.TailIncluded)
	if res.LongHorizon != nil {
		renderLongHorizon(res.LongHorizon, scale)
		return nil
	}
	renderRange(res.Snapshot, scale)
	return nil
}

// analyzeRemote serves the same historical range from a live collectord
// over /api/v1/query: identical rendering, no filesystem access.
func analyzeRemote(addr, fromArg, toArg, resolution string, scale int) error {
	c, err := client.New(addr, nil)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	res, err := c.QueryBounds(ctx, fromArg, toArg, &client.ReqOpts{Resolution: resolution})
	if err != nil {
		return err
	}
	if st, err := c.Stats(ctx); err == nil && st.Store != nil {
		fmt.Printf("collectord %s: %d checkpoint frames (%d records), %d un-checkpointed records\n",
			addr, st.Store.Frames, st.Store.FrameRecords, st.Store.TailRecords)
	}
	fmt.Printf("range [%s, %s): merged %d frames (tail included: %v)\n\n",
		timeBound(res.From, "origin"), timeBound(res.To, "end"), res.Frames, res.TailIncluded)
	if res.LongHorizon != nil {
		renderLongHorizon(res.LongHorizon, scale)
		return nil
	}
	renderRange(res.Snapshot.Streaming(), scale)
	return nil
}

// renderLongHorizon prints a day/week-resolution answer: the exact
// downsampled series and census, then the sketched estimates with their
// honest approximate label — shared by the local and remote paths.
func renderLongHorizon(ans *tier.Answer, scale int) {
	fmt.Println(core.RenderCensus(ans.Census, scale))
	fmt.Printf("%s series: %d buckets (%dh each)", ans.Resolution, len(ans.Buckets), ans.BucketHours)
	if len(ans.Buckets) > 0 {
		fmt.Printf(" [%s .. %s]", ans.Buckets[0].Time.Format(time.RFC3339),
			ans.Buckets[len(ans.Buckets)-1].Time.Format(time.RFC3339))
	}
	var flows, bytes float64
	for _, b := range ans.Buckets {
		flows += b.Flows
		bytes += b.Bytes
	}
	fmt.Printf(", %.0f flows, %.0f bytes\n", flows, bytes)
	fmt.Printf("sources: %d tier frames + %d raw residual frames\n", ans.TierFrames, ans.RawFrames)
	fmt.Printf("distinct client prefixes: ~%d (HLL estimate)\n", ans.DistinctPrefixes)
	p := ans.Presence
	fmt.Printf("prefix presence (per-frame observations): n=%d p50=%d p90=%d p99=%d max=%d\n",
		p.Count, p.P50, p.P90, p.P99, p.Max)
	if len(ans.Districts) > 0 {
		fmt.Printf("districts active: %d (located %d flows)\n", len(ans.Districts), ans.Located)
	}
}

// renderRange prints a historical range snapshot — shared verbatim by
// the local (-data-dir) and remote (-addr) paths, so both produce the
// same tables for the same data.
func renderRange(snap *streaming.Snapshot, scale int) {
	fmt.Println(core.RenderCensus(snap.Census, scale))

	// When the range covers the full study window the exact Figure-2
	// table is derivable; partial ranges fall back to the summary line.
	if fig2, err := snap.Figure2(adoption.DefaultCurve()); err == nil {
		fmt.Println(core.RenderFigure2(fig2))
	}

	var flows, bytes float64
	for _, p := range snap.Hours {
		flows += p.Flows
		bytes += p.Bytes
	}
	fmt.Printf("hourly series: %d hours", len(snap.Hours))
	if len(snap.Hours) > 0 {
		fmt.Printf(" [%s .. %s]", snap.Hours[0].Time.Format(time.RFC3339),
			snap.Hours[len(snap.Hours)-1].Time.Format(time.RFC3339))
	}
	fmt.Printf(", %.0f flows, %.0f bytes\n", flows, bytes)
	for i, sp := range snap.Spikes {
		if i >= 5 {
			fmt.Printf("spikes: ... %d more\n", len(snap.Spikes)-5)
			break
		}
		fmt.Printf("spike: %s flows=%.0f (%.1fx over trailing mean)\n",
			sp.Time.Format("Jan 02 15:04"), sp.Flows, sp.Ratio)
	}
	for i, pc := range snap.TopPrefixes {
		fmt.Printf("top prefix %d: %s (%d flows)\n", i+1, pc.Prefix, pc.Flows)
	}
	if len(snap.Districts) > 0 {
		fmt.Printf("districts active: %d (located %d flows)\n", len(snap.Districts), snap.Located)
	}
}

func timeBound(t time.Time, open string) string {
	if t.IsZero() {
		return open
	}
	return t.Format(time.RFC3339)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwanalyze: "+format+"\n", args...)
	os.Exit(1)
}
