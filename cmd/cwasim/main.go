// Command cwasim runs the full reproduction simulation and writes the
// anonymized Netflow trace (binary format) plus the geolocation sidecar
// that cwanalyze consumes — the synthetic stand-in for the data set the
// paper captured at the CWA hosting infrastructure.
//
// Usage:
//
//	cwasim -out trace.cwaflow -geodb geodb.jsonl [-scale 2000] [-seed N]
//	       [-sample 4] [-jsonl trace.jsonl]
//	       [-export host:port[,host:port] [-export-rate N] [-export-sources K]]
//
// With -export the simulator doubles as the live load generator: after the
// run it replays the trace as NFv9 export packets over UDP to a running
// collectord, through a pool of emulated exporters.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cwatrace/internal/ingest"
	"cwatrace/internal/sim"
	"cwatrace/internal/trace"
)

func main() {
	var (
		out     = flag.String("out", "trace.cwaflow", "binary trace output path")
		geoOut  = flag.String("geodb", "geodb.jsonl", "geolocation sidecar output path")
		jsonl   = flag.String("jsonl", "", "optional JSONL trace output path")
		scale   = flag.Int("scale", 0, "population scale (1 device per N real users; 0 = default)")
		seed    = flag.Int64("seed", 0, "simulation seed (0 = default)")
		sample  = flag.Int("sample", 0, "router packet sampling 1-in-N (0 = default)")
		workers = flag.Int("workers", 0, "simulation worker goroutines (0 = all CPUs, 1 = serial)")
		verbose = flag.Bool("v", false, "print run statistics")

		export        = flag.String("export", "", "comma-separated collector addresses for a live NFv9 replay")
		exportRate    = flag.Int("export-rate", 50000, "replay pacing in records/sec (0 = unpaced)")
		exportSources = flag.Int("export-sources", 8, "emulated exporter pool size for the replay")
	)
	flag.Parse()

	cfg := sim.DefaultConfig()
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *sample > 0 {
		cfg.Netflow.SampleRate = *sample
	}
	cfg.Workers = *workers

	res, err := sim.Run(cfg)
	if err != nil {
		fatal("simulation: %v", err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal("creating trace: %v", err)
	}
	if err := trace.WriteAll(f, res.Records); err != nil {
		fatal("writing trace: %v", err)
	}
	if err := f.Close(); err != nil {
		fatal("closing trace: %v", err)
	}

	g, err := os.Create(*geoOut)
	if err != nil {
		fatal("creating geodb sidecar: %v", err)
	}
	if err := res.GeoDB.Write(g); err != nil {
		fatal("writing geodb sidecar: %v", err)
	}
	if err := g.Close(); err != nil {
		fatal("closing geodb sidecar: %v", err)
	}

	if *jsonl != "" {
		j, err := os.Create(*jsonl)
		if err != nil {
			fatal("creating jsonl trace: %v", err)
		}
		if err := trace.WriteJSONL(j, res.Records); err != nil {
			fatal("writing jsonl trace: %v", err)
		}
		if err := j.Close(); err != nil {
			fatal("closing jsonl trace: %v", err)
		}
	}

	fmt.Printf("wrote %d flow records to %s (scale 1:%d), geodb to %s\n",
		len(res.Records), *out, cfg.Scale, *geoOut)

	if *export != "" {
		addrs := strings.Split(*export, ",")
		start := time.Now()
		rs, err := ingest.Replay(addrs, res.Records, ingest.ReplayConfig{
			Sources:          *exportSources,
			RecordsPerSecond: *exportRate,
		})
		if err != nil {
			fatal("exporting to collector: %v", err)
		}
		elapsed := time.Since(start)
		fmt.Printf("exported %d records in %d batches from %d sources to %s in %.2fs\n",
			rs.Records, rs.Batches, rs.Sources, *export, elapsed.Seconds())
	}
	if *verbose {
		s := res.Stats
		fmt.Printf("devices=%d installed=%d exchanges=%d webVisits=%d uploads=%d fakeCalls=%d\n",
			s.Devices, s.InstalledByEnd, s.Exchanges, s.WebVisits, s.Uploads, s.FakeCalls)
		fmt.Printf("packets observed=%d sampled=%d, cdn cache hits=%d misses=%d\n",
			s.PacketsObserved, s.PacketsSampled, s.CacheHits, s.CacheMisses)
		fmt.Printf("diagnosis keys per day: %v\n", s.KeysByDay)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cwasim: "+format+"\n", args...)
	os.Exit(1)
}
