// Command scenarios drives the declarative scenario engine: it lists the
// shipped catalog, validates specs (built-in or external JSON), and runs
// scenario sweeps, printing a comparison table of key metrics against the
// paper-baseline scenario.
//
// Runs fan out on the workgroup pool with deterministic per-scenario
// seeds, so the same base seed always produces the identical table.
//
// Usage:
//
//	scenarios list
//	scenarios validate [-file spec.json] [name ...]
//	scenarios run [-quick] [-seed N] [-workers N] [-file spec.json] [-all] [name ...]
//
// `scenarios run -all -quick` executes the full catalog at the reduced
// quick scale; `scenarios run second-wave` runs one scenario next to the
// auto-included baseline. An external -file spec joins the run the same
// way a registered scenario would.
package main

import (
	"flag"
	"fmt"
	"os"

	"cwatrace/internal/experiments"
	"cwatrace/internal/scenario"
	"cwatrace/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		fmt.Print(scenario.RenderCatalog(scenario.Catalog()))
	case "validate":
		err = validateCmd(os.Args[2:])
	case "run":
		err = runCmd(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "scenarios: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenarios: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  scenarios list                                             print the catalog
  scenarios validate [-file spec.json] [name ...]            validate specs (default: whole catalog)
  scenarios run [-quick] [-seed N] [-workers N]
                [-file spec.json] [-all] [name ...]          run scenarios, print comparison table
`)
}

// loadFile parses and validates one external JSON spec.
func loadFile(path string) (scenario.Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return scenario.Spec{}, err
	}
	defer f.Close()
	return scenario.ParseSpec(f)
}

func validateCmd(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	file := fs.String("file", "", "validate an external JSON spec file")
	fs.Parse(args)

	base := sim.DefaultConfig()
	check := func(sp scenario.Spec) error {
		// Apply catches errors a spec only exhibits against a real base
		// configuration (e.g. outbreak dates outside the epidemic window).
		if _, err := sp.Apply(base); err != nil {
			return err
		}
		fmt.Printf("ok: %s\n", sp.Name)
		return nil
	}

	if *file != "" {
		sp, err := loadFile(*file)
		if err != nil {
			return err
		}
		if err := check(sp); err != nil {
			return err
		}
	}
	names := fs.Args()
	if len(names) == 0 && *file == "" {
		for _, sp := range scenario.Catalog() {
			if err := check(sp); err != nil {
				return err
			}
		}
		return nil
	}
	for _, name := range names {
		sp, err := scenario.Get(name)
		if err != nil {
			return err
		}
		if err := check(sp); err != nil {
			return err
		}
	}
	return nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	quick := fs.Bool("quick", false, "use the reduced quick configuration (faster, coarser)")
	seed := fs.Int64("seed", 0, "override the base seed (0 = calibrated default)")
	workers := fs.Int("workers", scenario.SweepWorkers(), "concurrent scenario simulations")
	file := fs.String("file", "", "also run an external JSON spec file")
	all := fs.Bool("all", false, "run the full catalog")
	fs.Parse(args)

	base := sim.DefaultConfig()
	if *quick {
		base = experiments.QuickConfig()
	}
	if *seed != 0 {
		base.Seed = *seed
	}

	var specs []scenario.Spec
	switch {
	case *all:
		if len(fs.Args()) > 0 {
			return fmt.Errorf("run: -all and scenario names are mutually exclusive (got %v)", fs.Args())
		}
		specs = scenario.Catalog()
	default:
		names := fs.Args()
		if len(names) == 0 && *file == "" {
			return fmt.Errorf("run: give scenario names, -all, or -file (see `scenarios list`)")
		}
		// The baseline always joins the run so the delta columns have a
		// reference.
		hasBaseline := false
		for _, n := range names {
			if n == scenario.Baseline {
				hasBaseline = true
			}
		}
		if !hasBaseline {
			names = append([]string{scenario.Baseline}, names...)
		}
		for _, name := range names {
			sp, err := scenario.Get(name)
			if err != nil {
				return err
			}
			specs = append(specs, sp)
		}
	}
	if *file != "" {
		sp, err := loadFile(*file)
		if err != nil {
			return err
		}
		specs = append(specs, sp)
	}

	fmt.Printf("=== cwatrace scenario sweep (scale 1:%d, base seed %d, %d scenarios, %d workers) ===\n\n",
		base.Scale, base.Seed, len(specs), *workers)
	rows, err := scenario.RunAll(base, specs, *workers)
	if err != nil {
		return err
	}
	fmt.Print(scenario.RenderComparison(rows))
	return nil
}
