// Command cwabackend runs the Corona-Warn-App backend as a real HTTP
// server: verification (test results + TANs), submission and distribution
// services plus the website, all on one listener — mirroring how the
// production system serves app API calls and website visits from the same
// infrastructure.
//
// A second flag registers a demo positive test so a client walk-through
// (see examples/quickstart) has something to work with:
//
//	cwabackend -addr :8080 -demo
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"cwatrace/internal/cwaserver"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:8080", "listen address")
		demo = flag.Bool("demo", false, "register a demo positive test and print its token")
	)
	flag.Parse()

	backend, err := cwaserver.New(cwaserver.DefaultConfig(), nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cwabackend: %v\n", err)
		os.Exit(1)
	}
	if *demo {
		token := backend.RegisterTest(cwaserver.ResultPositive, time.Now())
		fmt.Printf("demo positive test registered; registration token: %s\n", token)
		fmt.Printf("  poll:   POST http://%s%s {\"registrationToken\":\"%s\"}\n",
			*addr, cwaserver.PathTestResult, token)
		fmt.Printf("  tan:    POST http://%s%s {\"registrationToken\":\"%s\"}\n",
			*addr, cwaserver.PathTAN, token)
		fmt.Printf("  upload: POST http://%s%s with header %s: <tan>\n",
			*addr, cwaserver.PathSubmission, cwaserver.HeaderTAN)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           cwaserver.Handler(backend, cwaserver.DefaultWebsite()),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("cwabackend listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("cwabackend: %v", err)
	}
}
