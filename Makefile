# Tier-1 verify is `make verify` (build + test); see ROADMAP.md.
GO ?= go

.PHONY: build test vet fmt race bench bench-ingest verify ci all ingest-demo ingest-demo-quick

all: verify vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt (same check CI runs).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

# The concurrency surface of the sharded engine and the live collector:
# the simulator, the flow collector, the backend, the CDN, the scenario
# sweep runner and the ingest/streaming pipeline under the race detector.
race:
	$(GO) test -race ./internal/sim/ ./internal/netflow/ ./internal/cwaserver/ ./internal/cdn/ ./internal/workgroup/ ./internal/scenario/ ./internal/ingest/ ./internal/streaming/

# One pass over every figure/table/ablation benchmark (see DESIGN.md for
# the experiment index) plus the ingest throughput benchmark.
bench:
	$(GO) test -run XXX -bench=. -benchtime=1x -benchmem . ./internal/ingest/

# The ingest throughput benchmark alone (the EXPERIMENTS.md snapshot).
bench-ingest:
	$(GO) test -run XXX -bench BenchmarkIngestPipeline -benchmem ./internal/ingest/

# Live ingest smoke run: simulate, replay the trace as NFv9/UDP over
# loopback into the collector pipeline, verify the streaming aggregates
# against the batch analysis. `-quick` is the smaller CI variant.
ingest-demo:
	$(GO) run ./cmd/collectord -demo

ingest-demo-quick:
	$(GO) run ./cmd/collectord -demo -quick

verify: build test

# Mirrors .github/workflows/ci.yml: the formatting gate, static checks,
# the full test suite, the race pass and the ingest smoke run.
ci: fmt vet build test race ingest-demo-quick
