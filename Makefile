# Tier-1 verify is `make verify` (build + test); see ROADMAP.md.
GO ?= go

.PHONY: build test vet fmt race bench bench-ingest bench-json bench-store bench-api bench-api-quick fuzz-smoke crash-smoke api-smoke cluster-smoke verify ci all ingest-demo ingest-demo-quick

all: verify vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt (same check CI runs).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

# The concurrency surface of the sharded engine and the live collector:
# the simulator, the flow collector, the backend, the CDN, the scenario
# sweep runner, the ingest/streaming pipeline and the durable store
# (including the crash-recovery byte-identity test) under the race
# detector.
race:
	$(GO) test -race ./internal/sim/ ./internal/netflow/ ./internal/cwaserver/ ./internal/cdn/ ./internal/workgroup/ ./internal/scenario/ ./internal/ingest/ ./internal/streaming/ ./internal/store/ ./internal/tier/ ./internal/sketch/ ./internal/api/ ./internal/api/client/ ./internal/cluster/ ./internal/obs/

# One pass over every figure/table/ablation benchmark (see DESIGN.md for
# the experiment index) plus the ingest and store benchmarks.
bench:
	$(GO) test -run XXX -bench=. -benchtime=1x -benchmem . ./internal/ingest/ ./internal/store/

# The ingest throughput benchmark alone (the EXPERIMENTS.md snapshot).
bench-ingest:
	$(GO) test -run XXX -bench BenchmarkIngestPipeline -benchmem ./internal/ingest/

# The ingest benchmark as machine-readable JSON (BENCH_ingest.json)
# plus the cluster fan-out latency snapshot (BENCH_cluster.json):
# scatter-gather p50/p99 through a real router at 1/2/4 nodes, and the
# long-horizon query snapshot (BENCH_query.json): raw vs tiered
# resolutions over a simulated year, with sketch error bounds. CI
# archives the files per commit.
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_ingest.json
	$(GO) run ./cmd/benchjson -cluster -o BENCH_cluster.json
	$(GO) run ./cmd/benchjson -obs -o BENCH_obs.json
	$(GO) run ./cmd/benchjson -query -o BENCH_query.json

# The durable-store benchmarks alone: WAL append per fsync policy and
# historical range queries (the EXPERIMENTS.md snapshot).
bench-store:
	$(GO) test -run XXX -bench 'BenchmarkStoreAppend|BenchmarkQueryRange' -benchmem ./internal/store/

# The API throughput benchmark (the EXPERIMENTS.md snapshot): a durable
# store + versioned API under live ingest, measuring per-hit marshaling
# vs the single-flight response cache vs conditional (ETag) 304s.
bench-api:
	$(GO) run ./cmd/apiload -self -duration 5s -c 8

bench-api-quick:
	$(GO) run ./cmd/apiload -self -quick -duration 2s -c 4

# API smoke drill: collectord -demo -quick -serve, then an
# /api/v1/snapshot If-None-Match round trip asserting the 304. CI runs
# the same test.
api-smoke:
	$(GO) test -run TestAPISmoke -count=1 -v ./cmd/collectord/

# Short fuzz pass over the two wire/disk decoders: the NFv9 packet
# decoder and the store record codec. CI runs the same smoke.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecode -fuzztime=10s -run XXX ./internal/nfv9/
	$(GO) test -fuzz=FuzzDecode -fuzztime=10s -run XXX ./internal/store/

# SIGKILL drill: start a durable collector, stream half a trace over
# UDP, kill -9 mid-capture, restart on the same data dir and require the
# recovered /snapshot to match the pre-kill accounting. The tier half
# crashes a month-long store mid-tier-fold (torn temp file, lost day
# frame), serves it through the real daemon, SIGKILLs that too, and
# requires the long-horizon answer unchanged throughout.
crash-smoke:
	$(GO) test -run 'TestCrashRecoverySmoke|TestTierCrashSmoke' -count=1 -v ./cmd/collectord/

# Cluster drill: three sharded collectord processes plus a queryrouterd,
# real NFv9/UDP traffic into every node, SIGKILL one shard and require
# the documented degraded envelope (206 + missing_shards), then restart
# it on the same data dir/ports and require byte-identical recovery.
cluster-smoke:
	$(GO) test -run TestClusterSmoke -count=1 -v ./cmd/queryrouterd/

# Live ingest smoke run: simulate, replay the trace as NFv9/UDP over
# loopback into the collector pipeline, verify the streaming aggregates
# against the batch analysis. `-quick` is the smaller CI variant.
ingest-demo:
	$(GO) run ./cmd/collectord -demo

ingest-demo-quick:
	$(GO) run ./cmd/collectord -demo -quick

verify: build test

# Mirrors .github/workflows/ci.yml: the formatting gate, static checks,
# the full test suite, the race pass, the ingest smoke run, the crash
# drill, the API conditional-GET smoke, the cluster kill/recovery drill
# and the fuzz smoke.
ci: fmt vet build test race ingest-demo-quick crash-smoke api-smoke cluster-smoke fuzz-smoke
