# Tier-1 verify is `make verify` (build + test); see ROADMAP.md.
GO ?= go

.PHONY: build test vet fmt race bench verify ci all

all: verify vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt (same check CI runs).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

# The concurrency surface of the sharded engine: the simulator, the flow
# collector, the backend, the CDN and the scenario sweep runner under the
# race detector.
race:
	$(GO) test -race ./internal/sim/ ./internal/netflow/ ./internal/cwaserver/ ./internal/cdn/ ./internal/workgroup/ ./internal/scenario/

# One pass over every figure/table/ablation benchmark (see DESIGN.md for
# the experiment index).
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem .

verify: build test

# Mirrors .github/workflows/ci.yml: the formatting gate, static checks,
# the full test suite and the race pass.
ci: fmt vet build test race
