# Tier-1 verify is `make verify` (build + test); see ROADMAP.md.
GO ?= go

.PHONY: build test vet race bench verify all

all: verify vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrency surface of the sharded engine: the simulator, the flow
# collector, the backend and the CDN under the race detector.
race:
	$(GO) test -race ./internal/sim/ ./internal/netflow/ ./internal/cwaserver/ ./internal/cdn/ ./internal/workgroup/

# One pass over every figure/table/ablation benchmark (see DESIGN.md for
# the experiment index).
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem .

verify: build test
